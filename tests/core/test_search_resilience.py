"""Fault tolerance of the candidate search: retries, timeouts, broken
pools, and the kill-and-resume journal.

The acceptance tests pinned here: a search interrupted mid-way and
resumed from its JSONL journal produces a *bit-identical* packed blob
to an uninterrupted run (with ``SearchStats.resumed_groups > 0``), and
a crashed process-pool worker degrades to serial execution instead of
aborting the run.
"""

import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro import nn
from repro.core import (SearchEngine, SearchJournal,
                        SearchTaskError, UPAQCompressor, hck_config,
                        pack_model)
from repro.nn import Tensor

# ----------------------------------------------------------------------
# Minimal picklable tasks for driving the engine directly.
# ----------------------------------------------------------------------
_FAIL_COUNT = {"n": 0}


@dataclass
class EchoTask:
    name: str
    payload: int
    flag_dir: str = ""

    def cache_key(self):
        return ("echo", self.name, self.payload, self.flag_dir)


def run_echo(task):
    return task.payload * 2


def run_flaky(task):
    """Fails twice in-process, then succeeds (serial retry food)."""
    _FAIL_COUNT["n"] += 1
    if _FAIL_COUNT["n"] <= 2:
        raise RuntimeError("transient failure")
    return task.payload


def run_always_fails(task):
    raise RuntimeError("permanent failure")


def run_crashy(task):
    """Kills the worker *process*; succeeds when re-run in the parent."""
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return task.payload


def run_sleepy_once(task):
    """The 'slow' task blows the timeout once, instant afterwards."""
    flag = Path(task.flag_dir) / f"{task.name}.attempted"
    if task.name == "slow" and not flag.exists():
        flag.touch()
        time.sleep(1.5)
    return task.payload


class TestRetries:
    def test_transient_failures_are_retried(self):
        _FAIL_COUNT["n"] = 0
        engine = SearchEngine(workers=1, max_retries=3,
                              retry_backoff_s=0.001)
        results = engine.map(run_flaky, [EchoTask("a", 7)])
        assert results[0][0] == 7
        assert engine.retries == 2

    def test_retry_budget_exhaustion_raises_typed_error(self):
        engine = SearchEngine(workers=1, max_retries=1,
                              retry_backoff_s=0.001)
        with pytest.raises(SearchTaskError, match="'a' failed after 2"):
            engine.map(run_always_fails, [EchoTask("a", 1)])
        assert engine.retries == 1

    def test_no_retries_by_default(self):
        engine = SearchEngine(workers=1)
        with pytest.raises(SearchTaskError):
            engine.map(run_always_fails, [EchoTask("a", 1)])
        assert engine.retries == 0


class TestBrokenPoolRecovery:
    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="crash test relies on forked workers")
    def test_worker_crash_degrades_to_serial(self):
        engine = SearchEngine(workers=2, backend="process")
        tasks = [EchoTask(f"t{i}", i) for i in range(4)]
        results = engine.map(run_crashy, tasks)
        assert [r for r, _ in results] == [0, 1, 2, 3]
        assert engine.pool_failures == 1


class TestTimeouts:
    def test_hung_task_times_out_and_retries_inline(self, tmp_path):
        engine = SearchEngine(workers=2, backend="thread",
                              task_timeout_s=0.25, max_retries=1,
                              retry_backoff_s=0.001)
        tasks = [EchoTask("slow", 5, flag_dir=str(tmp_path)),
                 EchoTask("fast", 6, flag_dir=str(tmp_path))]
        results = engine.map(run_sleepy_once, tasks)
        assert [r for r, _ in results] == [5, 6]
        assert engine.timeouts == 1
        assert engine.retries == 1


class TestJournal:
    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SearchJournal(path)
        key = ("root", b"\x01\x02", 4)
        journal.record(key, {"value": np.arange(3)})
        reloaded = SearchJournal(path)
        assert len(reloaded) == 1
        np.testing.assert_array_equal(reloaded.get(key)["value"],
                                      np.arange(3))

    def test_corrupt_lines_are_skipped_not_trusted(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = SearchJournal(path)
        journal.record(("a",), 1)
        journal.record(("b",), 2)
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a payload byte of the first entry, truncate the second.
        first = bytearray(lines[0])
        first[-10] ^= 0xFF
        path.write_bytes(bytes(first) + lines[1][:len(lines[1]) // 2])
        reloaded = SearchJournal(path)
        assert len(reloaded) == 0
        assert reloaded.corrupt_lines == 2
        assert reloaded.get(("a",)) is None

    def test_engine_resumes_from_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        tasks = [EchoTask(f"t{i}", i) for i in range(3)]
        first = SearchEngine(workers=1, journal=SearchJournal(path))
        first.map(run_echo, tasks)
        assert first.resumed == 0
        second = SearchEngine(workers=1, journal=SearchJournal(path))
        results = second.map(run_echo, tasks)
        assert [r for r, cached in results] == [0, 2, 4]
        assert all(cached for _, cached in results)
        assert second.resumed == 3


# ----------------------------------------------------------------------
# Kill-and-resume acceptance on a real compression run.
# ----------------------------------------------------------------------
class ChainNet(nn.Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = nn.Conv2d(2, 4, 3, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(4, 4, 3, padding=1, rng=rng)
        self.proj = nn.Conv2d(4, 2, 1, rng=rng)

    def forward(self, x):
        return self.proj(self.conv2(self.conv1(x).relu()).relu())

    def example_inputs(self):
        rng = np.random.default_rng(1)
        return (Tensor(rng.standard_normal((1, 2, 6, 6))
                       .astype(np.float32)),)


class TestKillAndResume:
    def test_resumed_search_is_bit_identical(self, tmp_path, monkeypatch):
        model = ChainNet()
        inputs = model.example_inputs()
        journal_path = str(tmp_path / "search.jsonl")

        baseline = UPAQCompressor(hck_config(seed=3)).compress(
            model, *inputs)
        baseline_blob = pack_model(baseline.model)

        # Kill the run after the first root task completes.
        import repro.core.compressor as compressor_module
        real_run_root = compressor_module.run_root_task
        calls = {"n": 0}

        def dying_run_root(task):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt("simulated mid-search kill")
            return real_run_root(task)

        monkeypatch.setattr(compressor_module, "run_root_task",
                            dying_run_root)
        interrupted = UPAQCompressor(
            hck_config(seed=3, search_journal=journal_path))
        with pytest.raises((KeyboardInterrupt, SearchTaskError)):
            interrupted.compress(model, *inputs)
        monkeypatch.setattr(compressor_module, "run_root_task",
                            real_run_root)

        journal = SearchJournal(journal_path)
        assert 0 < len(journal), "kill left no completed work to resume"

        resumed = UPAQCompressor(
            hck_config(seed=3, search_journal=journal_path)).compress(
            model, *inputs)
        assert resumed.search.resumed_groups > 0
        assert pack_model(resumed.model) == baseline_blob
        assert resumed.choices == baseline.choices

    def test_uninterrupted_journal_run_matches_plain_run(self, tmp_path):
        model = ChainNet(seed=4)
        inputs = model.example_inputs()
        plain = UPAQCompressor(hck_config(seed=0)).compress(model, *inputs)
        journaled = UPAQCompressor(hck_config(
            seed=0, search_journal=str(tmp_path / "j.jsonl"))).compress(
            model, *inputs)
        assert pack_model(plain.model) == pack_model(journaled.model)
        assert journaled.search.resumed_groups == 0
        # Second run over the same journal restores every task.
        rerun = UPAQCompressor(hck_config(
            seed=0, search_journal=str(tmp_path / "j.jsonl"))).compress(
            model, *inputs)
        assert rerun.search.resumed_groups > 0
        assert pack_model(rerun.model) == pack_model(plain.model)
