"""Tests for the packed sparse-model serialization format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.core import (BlobCorruptionError, BlobError, UPAQCompressor,
                        hck_config, pack_bits, pack_layer, pack_model,
                        packed_size_report, unpack_bits, unpack_layer,
                        unpack_model)
from repro.hardware import CompressionMeta, annotate_layer
from repro.nn import Tensor

from tests.core.golden.regen import (GOLDEN_PATH, _dense_weights,
                                     _semi_structured_weights,
                                     _unstructured_weights, golden_blob,
                                     golden_model)


class TestBitPacking:
    def test_roundtrip_8bit(self):
        codes = np.array([-127, -1, 0, 1, 127])
        packed = pack_bits(codes, 8)
        np.testing.assert_array_equal(unpack_bits(packed, 8, 5), codes)

    def test_roundtrip_4bit(self):
        codes = np.array([-7, -3, 0, 3, 7, 1, -1])
        packed = pack_bits(codes, 4)
        assert len(packed) == 4   # 7 values × 4 bits = 28 bits → 4 bytes
        np.testing.assert_array_equal(unpack_bits(packed, 4, 7), codes)

    def test_roundtrip_odd_widths(self):
        for bits in (3, 5, 6, 7, 11, 13):
            hi = 2 ** (bits - 1) - 1
            rng = np.random.default_rng(bits)
            codes = rng.integers(-hi, hi + 1, size=33)
            packed = pack_bits(codes, bits)
            np.testing.assert_array_equal(unpack_bits(packed, bits, 33),
                                          codes)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([300]), 8)

    def test_bad_bits_raises(self):
        with pytest.raises(ValueError):
            pack_bits(np.array([0]), 0)

    @given(st.integers(2, 16), st.integers(1, 100))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, bits, count):
        hi = 2 ** (bits - 1) - 1
        rng = np.random.default_rng(bits * 1000 + count)
        codes = rng.integers(-hi, hi + 1, size=count)
        np.testing.assert_array_equal(
            unpack_bits(pack_bits(codes, bits), bits, count), codes)

    def test_packing_density(self):
        codes = np.zeros(1000, dtype=np.int64)
        assert len(pack_bits(codes, 4)) == 500
        assert len(pack_bits(codes, 16)) == 2000


class TestLayerPacking:
    def test_semi_structured_roundtrip_stable(self):
        rng = np.random.default_rng(0)
        weights = rng.standard_normal((4, 2, 3, 3)).astype(np.float32)
        weights[:, :, 0, :] = 0.0   # pattern-ish sparsity
        blob = pack_layer(weights, bits=8, scheme="semi-structured")
        restored, bits, scheme = unpack_layer(blob)
        assert bits == 8
        assert scheme == "semi-structured"
        assert restored.shape == weights.shape
        # Zeros preserved exactly; values within half a quantization step.
        assert (restored[weights == 0] == 0).all()
        step = np.abs(weights).max() / 127
        assert np.abs(restored - weights).max() <= step
        # Idempotent: packing the restored weights reproduces them.
        blob2 = pack_layer(restored, bits=8, scheme="semi-structured")
        restored2, _, _ = unpack_layer(blob2)
        np.testing.assert_allclose(restored2, restored, atol=1e-6)

    def test_unstructured_roundtrip(self):
        rng = np.random.default_rng(1)
        weights = rng.standard_normal((6, 4)).astype(np.float32)
        weights[np.abs(weights) < 0.8] = 0.0
        blob = pack_layer(weights, bits=8, scheme="unstructured")
        restored, _, scheme = unpack_layer(blob)
        assert scheme == "unstructured"
        assert ((restored == 0) == (weights == 0)).all()

    def test_sparse_packing_smaller_than_dense(self):
        rng = np.random.default_rng(2)
        weights = rng.standard_normal((16, 8, 3, 3)).astype(np.float32)
        mask = np.zeros((3, 3), dtype=np.float32)
        mask[1] = 1.0
        sparse = weights * mask
        blob = pack_layer(sparse, bits=8, scheme="semi-structured")
        assert len(blob) < weights.size * 4 / 2.5


# ----------------------------------------------------------------------
# Bit-exact round trips.  ``pack_layer`` recovers quantization scales
# from the weights themselves (per-kernel alpha / max_code), so weights
# constructed as integer codes × a power-of-two scale — with the extreme
# code attained in every scale group — survive pack → unpack *bitwise*.
# The on-grid weight builders live in ``tests.core.golden.regen``, the
# same module that regenerates the golden blob from them.
# ----------------------------------------------------------------------
class TestBitExactRoundTrip:
    """Satellite: pack → unpack is bit-exact for 4/8/16-bit kernels."""

    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_semi_structured(self, bits):
        weights = _semi_structured_weights(bits)
        restored, out_bits, scheme = unpack_layer(
            pack_layer(weights, bits=bits, scheme="semi-structured"))
        assert (out_bits, scheme) == (bits, "semi-structured")
        assert restored.tobytes() == weights.tobytes()

    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_dense(self, bits):
        weights = _dense_weights(bits)
        restored, out_bits, scheme = unpack_layer(
            pack_layer(weights, bits=bits, scheme="dense"))
        assert (out_bits, scheme) == (bits, "dense")
        assert restored.tobytes() == weights.tobytes()

    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_dense_1x1_per_channel(self, bits):
        weights = _dense_weights(bits, shape=(4, 8, 1, 1))
        restored, _, _ = unpack_layer(
            pack_layer(weights, bits=bits, scheme="dense"))
        assert restored.tobytes() == weights.tobytes()

    @pytest.mark.parametrize("bits", [4, 8, 16])
    def test_unstructured(self, bits):
        weights = _unstructured_weights(bits)
        restored, out_bits, scheme = unpack_layer(
            pack_layer(weights, bits=bits, scheme="unstructured"))
        assert (out_bits, scheme) == (bits, "unstructured")
        assert restored.tobytes() == weights.tobytes()


class TestGoldenBlob:
    """The checked-in blob guards the on-disk format against drift.

    If these fail after an intentional format change, bump ``_VERSION``
    in ``core/packing.py``, rename the golden file after it, and
    regenerate by script (never by hand)::

        PYTHONPATH=src python -m tests.core.golden.regen
    """

    def test_golden_blob_checked_in(self):
        assert GOLDEN_PATH.exists(), \
            "golden blob missing — run: python -m tests.core.golden.regen"

    def test_header_magic_and_version(self):
        blob = GOLDEN_PATH.read_bytes()
        assert blob[:4] == b"UPAQ"
        assert blob[4] == 4             # _VERSION

    def test_pack_reproduces_golden_bytes(self):
        assert golden_blob() == GOLDEN_PATH.read_bytes()

    def test_golden_unpacks_bit_exact(self):
        reference = golden_model()
        clone = golden_model()
        for index in (0, 2, 3):
            clone[index].weight.data = np.zeros_like(
                clone[index].weight.data)
        unpack_model(GOLDEN_PATH.read_bytes(), clone)
        for index in (0, 2, 3):
            assert clone[index].weight.data.tobytes() \
                == reference[index].weight.data.tobytes()

    def test_golden_blob_carries_ir(self):
        from repro.core import restore_model
        report = restore_model(GOLDEN_PATH.read_bytes(), golden_model())
        assert report.ir is not None
        assert report.ir.layer_names == ["0", "2", "3"]


class TestModelPacking:
    def _model(self):
        rng = np.random.default_rng(3)
        return nn.Sequential(nn.Conv2d(2, 4, 3, padding=1, rng=rng),
                             nn.ReLU(),
                             nn.Conv2d(4, 2, 1, rng=rng))

    def test_roundtrip_into_fresh_model(self):
        model = self._model()
        annotate_layer(model[0], CompressionMeta(bits=8,
                                                 scheme="semi-structured"))
        blob = pack_model(model)
        clone = self._model()
        clone[0].weight.data *= 0
        unpack_model(blob, clone)
        step = np.abs(model[0].weight.data).max() / 127
        assert np.abs(clone[0].weight.data
                      - model[0].weight.data).max() <= step

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="not a UPAQ"):
            unpack_model(b"JUNKxxxx", self._model())

    def test_packed_report_matches_plan_scale(self):
        """Measured packed bytes track the analytic storage model.

        Uses realistically-sized layers so per-layer headers amortize.
        """
        from repro.hardware import compile_model
        rng = np.random.default_rng(4)
        model = nn.Sequential(
            nn.Conv2d(16, 32, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(32, 32, 3, padding=1, rng=rng),
            nn.Conv2d(32, 16, 1, rng=rng),
        )
        x = Tensor(rng.standard_normal((1, 16, 8, 8)).astype(np.float32))
        compressor = UPAQCompressor(hck_config())
        report = compressor.compress(model, x)
        measured = packed_size_report(report.model)
        analytic = compile_model(report.model, x).compression_ratio
        assert measured["measured_ratio"] == pytest.approx(analytic,
                                                           rel=0.35)


class TestTruncationBoundaries:
    """Empty/truncated input raises typed :class:`BlobError`, never a
    bare ``struct.error`` or ``IndexError`` from the parsing internals.
    """

    def test_empty_blob_raises_blob_error(self):
        with pytest.raises(BlobError):
            unpack_model(b"", golden_model())

    def test_empty_layer_raises_blob_error(self):
        with pytest.raises(BlobError):
            unpack_layer(b"")

    def test_every_blob_prefix_raises_blob_error(self):
        blob = golden_blob()
        model = golden_model()
        for cut in range(len(blob)):
            with pytest.raises(BlobError):
                unpack_model(blob[:cut], model)

    def test_every_layer_prefix_raises_blob_error(self):
        payload = pack_layer(
            _semi_structured_weights(4, seed=20), bits=4,
            scheme="semi-structured")
        for cut in range(len(payload)):
            with pytest.raises(BlobError):
                unpack_layer(payload[:cut])

    def test_truncated_bitstream_raises_blob_error(self):
        codes = np.arange(-7, 8)
        packed = pack_bits(codes, 4)
        with pytest.raises(BlobCorruptionError):
            unpack_bits(packed[:-1], 4, len(codes))
        with pytest.raises(BlobCorruptionError):
            unpack_bits(b"", 4, 1)

    def test_garbage_after_magic_raises_blob_error(self):
        blob = golden_blob()
        with pytest.raises(BlobError):
            unpack_model(blob[:8] + b"\x00" * 16, golden_model())
