"""Failure injection and degenerate-input tests across the stack.

Production code meets empty scenes, all-zero layers, corrupted blobs and
double compression; these tests pin the intended behavior for each.
"""

import numpy as np
import pytest

from repro import nn
from repro.core import (UPAQCompressor, hck_config, mp_quantizer,
                        pack_model, unpack_model)
from repro.detection import DetectionResult, evaluate_map
from repro.hardware import compile_model, default_devices, profile_model
from repro.models import PointPillars
from repro.nn import Tensor
from repro.pointcloud import (LidarConfig, PillarConfig,
                              PillarEncoder, Scene, SceneConfig,
                              SceneGenerator)


def _tiny_pp(seed=0):
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=seed)


class TestEmptyInputs:
    def test_scene_with_no_objects_predicts(self):
        cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10), max_cars=1,
                          lidar=LidarConfig(channels=8, azimuth_steps=60))
        scene = SceneGenerator(cfg, seed=0).generate(0, with_image=False)
        scene.boxes = []          # strip the labels
        model = _tiny_pp()
        result = model.predict(scene)
        assert isinstance(result, DetectionResult)
        loss = model.loss(model.forward(*model.preprocess(scene)), scene)
        assert np.isfinite(loss.item())

    def test_empty_pointcloud_encodes(self):
        encoder = PillarEncoder(PillarConfig())
        pillars = encoder.encode(np.zeros((0, 4), dtype=np.float32))
        assert pillars.num_pillars == 0

    def test_predict_on_empty_cloud(self):
        model = _tiny_pp()
        scene = Scene(points=np.zeros((0, 4), dtype=np.float32), boxes=[])
        # A frame with no LiDAR returns still decodes to a result.
        result = model.predict(scene)
        assert isinstance(result, DetectionResult)

    def test_evaluation_with_nothing(self):
        import math
        metrics = evaluate_map([], [])
        # No class has any ground truth: the metric is undefined — NaN,
        # mirroring StreamReport's NaN-on-empty convention — not a
        # spurious perfect-looking 0.0.
        assert math.isnan(metrics["mAP"])


class TestCorruption:
    def test_truncated_pack_blob_raises(self):
        model = _tiny_pp()
        blob = pack_model(model)
        with pytest.raises(Exception):
            unpack_model(blob[: len(blob) // 2], _tiny_pp())

    def test_wrong_architecture_rejected(self):
        model = _tiny_pp()
        blob = pack_model(model)
        other = PointPillars(
            pillar_config=PillarConfig(x_range=(0, 25.6),
                                       y_range=(-12.8, 12.8)),
            pfn_channels=16, stage_channels=(16, 32, 64),
            stage_depths=(1, 1, 1), upsample_channels=8, seed=0)
        with pytest.raises(ValueError, match="shape mismatch"):
            unpack_model(blob, other)

    def test_version_mismatch_rejected(self):
        model = _tiny_pp()
        blob = bytearray(pack_model(model))
        blob[4] = 99    # version byte
        with pytest.raises(ValueError, match="version"):
            unpack_model(bytes(blob), _tiny_pp())


class TestDegenerateWeights:
    def test_quantize_all_zero_layer(self):
        result = mp_quantizer(np.zeros((4, 4, 3, 3), dtype=np.float32), 8)
        assert (result.values == 0).all()

    def test_compress_model_with_dead_layer(self):
        model = _tiny_pp()
        model.backbone.stage2.blocks[0].conv.weight.data *= 0.0
        report = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        out = report.model(*model.example_inputs())
        assert np.isfinite(out["cls"].data).all()

    def test_double_compression_is_stable(self):
        model = _tiny_pp()
        inputs = model.example_inputs()
        compressor = UPAQCompressor(hck_config())
        once = compressor.compress(model, *inputs)
        twice = compressor.compress(once.model, *inputs)
        # Re-compressing an already-compressed model must not densify it
        # and keeps the forward pass finite.
        assert twice.overall_sparsity >= once.overall_sparsity - 0.01
        out = twice.model(*inputs)
        assert np.isfinite(out["cls"].data).all()

    def test_profile_of_model_without_kernel_layers(self):
        model = nn.Sequential(nn.ReLU())
        x = Tensor(np.ones((1, 2, 4, 4), dtype=np.float32))
        profile = profile_model(model, x)
        assert profile.layers == []
        plan = compile_model(model, x)
        assert plan.compression_ratio == float("inf")
        assert default_devices()["jetson"].latency(plan) >= 0.0


class TestNumericalEdges:
    def test_huge_weights_quantize_finite(self):
        weights = np.array([1e30, -1e30, 1.0], dtype=np.float32)
        result = mp_quantizer(weights, 8)
        assert np.isfinite(result.values).all()

    def test_scene_far_outside_range_yields_no_pillars_in_grid(self):
        encoder = PillarEncoder(PillarConfig(x_range=(0, 10),
                                             y_range=(-5, 5)))
        points = np.array([[1000.0, 1000.0, 0.5, 0.1]], dtype=np.float32)
        assert encoder.encode(points).num_pillars == 0

    def test_nms_single_box(self):
        from repro.detection import nms_bev
        boxes = np.array([[5, 0, 1, 4, 2, 2, 0.0]], dtype=np.float32)
        keep = nms_bev(boxes, np.array([0.5]))
        assert list(keep) == [0]

    def test_iou_degenerate_box(self):
        from repro.pointcloud import iou_bev
        zero_area = np.array([5, 0, 1, 0, 0, 2, 0.0])
        normal = np.array([5, 0, 1, 4, 2, 2, 0.0])
        assert iou_bev(zero_area, normal) == 0.0
