"""End-to-end integration tests: the full pipeline on tiny models.

These exercise the exact flow the benchmark harness drives — scene
generation → training step → compression (UPAQ and baselines) →
fine-tuning → prediction → evaluation — at miniature scale so the whole
module runs in well under a minute.
"""

import numpy as np
import pytest

from repro import nn
from repro.baselines import ClipQ, LidarPTQ, PsAndQs, RToss
from repro.core import UPAQCompressor, hck_config, lck_config
from repro.detection import evaluate_map
from repro.hardware import compile_model, default_devices
from repro.models import PointPillars, SMOKE
from repro.camera import CameraModel, render_scene
from repro.pointcloud import LidarConfig, SceneConfig, SceneGenerator
from repro.pointcloud.voxelize import PillarConfig


def _tiny_pp():
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8),
                                   pillar_size=0.8),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=0)


@pytest.fixture(scope="module")
def scenes():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=12, azimuth_steps=90))
    generator = SceneGenerator(cfg, seed=0)
    result = [generator.generate(i, with_image=False) for i in range(4)]
    camera = CameraModel.kitti_like(width=64, height=24)
    for scene in result:
        scene.image = render_scene(camera, scene.boxes,
                                   rng=np.random.default_rng(scene.frame_id))
        scene.calib = {"K": camera.intrinsics()}
    return result


@pytest.fixture(scope="module")
def trained_pp(scenes):
    model = _tiny_pp()
    optimizer = nn.optim.Adam(model.parameters(), lr=3e-3)
    for _ in range(6):
        for scene in scenes[:3]:
            model.train_step(optimizer, scene)
    return model


class TestFullPipeline:
    def test_compress_finetune_predict_evaluate(self, trained_pp, scenes):
        inputs = trained_pp.example_inputs()
        compressor = UPAQCompressor(hck_config())
        report = compressor.compress(trained_pp, *inputs)
        compressor.finetune(report, scenes[:3], epochs=1)

        predictions = [report.model.predict(s) for s in scenes]
        metrics = evaluate_map(predictions, [s.boxes for s in scenes])
        assert np.isfinite(metrics["mAP"])
        assert report.compression_ratio > 2.0

    def test_finetuning_preserves_sparsity_and_grid(self, trained_pp,
                                                    scenes):
        inputs = trained_pp.example_inputs()
        compressor = UPAQCompressor(lck_config())
        report = compressor.compress(trained_pp, *inputs)
        sparsity_before = report.overall_sparsity
        compressor.finetune(report, scenes[:2], epochs=1)
        layers = dict(report.model.named_parameters())
        zeros = sum(int((layers[name + ".weight"].data == 0).sum())
                    for name in report.masks)
        total = sum(layers[name + ".weight"].data.size
                    for name in report.masks)
        assert zeros / total >= sparsity_before - 0.01

    def test_all_frameworks_produce_runnable_models(self, trained_pp,
                                                    scenes):
        inputs = trained_pp.example_inputs()
        jetson = default_devices()["jetson"]
        base_latency = jetson.latency(compile_model(trained_pp, *inputs))
        for framework in (PsAndQs(iterations=1), ClipQ(), RToss(),
                          LidarPTQ()):
            report = framework.compress(trained_pp, *inputs)
            result = report.model.predict(scenes[0])
            assert result.frame_id == scenes[0].frame_id
            latency = jetson.latency(compile_model(report.model, *inputs))
            assert latency <= base_latency * 1.1, framework.name

    def test_finetuning_recovers_training_loss(self, trained_pp, scenes):
        """After masked fine-tuning, the compressed model's loss returns
        to the neighbourhood of the uncompressed model's loss."""
        inputs = trained_pp.example_inputs()
        trained_pp.eval()
        base_loss = trained_pp.loss(
            trained_pp.forward(*trained_pp.preprocess(scenes[0])),
            scenes[0]).item()
        compressor = UPAQCompressor(lck_config())
        report = compressor.compress(trained_pp, *inputs)
        compressor.finetune(report, scenes[:3], epochs=2)
        report.model.eval()
        compressed_loss = report.model.loss(
            report.model.forward(*report.model.preprocess(scenes[0])),
            scenes[0]).item()
        assert np.isfinite(compressed_loss)
        assert compressed_loss < base_loss * 5.0

    def test_smoke_end_to_end(self, scenes):
        camera = CameraModel.kitti_like(width=64, height=24)
        model = SMOKE(camera=camera, base_channels=8, head_channels=8,
                      seed=0)
        optimizer = nn.optim.Adam(model.parameters(), lr=3e-3)
        for _ in range(3):
            model.train_step(optimizer, scenes[0])
        inputs = model.example_inputs()
        report = UPAQCompressor(hck_config()).compress(model, *inputs)
        result = report.model.predict(scenes[0])
        assert report.compression_ratio > 2.0
        for box in result.boxes:
            assert box.label in ("Car", "Pedestrian", "Cyclist")

    def test_table2_shape_on_tiny_model(self, trained_pp, scenes):
        """Compression ordering (the Table 2 headline) on a tiny model."""
        inputs = trained_pp.example_inputs()
        ratios = {}
        for name, framework in (("psqs", PsAndQs(iterations=1)),
                                ("hck", UPAQCompressor(hck_config())),
                                ("lck", UPAQCompressor(lck_config()))):
            ratios[name] = framework.compress(
                trained_pp, *inputs).compression_ratio
        assert ratios["hck"] > ratios["lck"] > ratios["psqs"]
