"""Shared helpers for nn tests: numeric gradient checking."""

from __future__ import annotations

import numpy as np

from repro.nn import Tensor


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar fn w.r.t. array x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_grad(op, *shapes, rng=None, atol=2e-2, rtol=2e-2, scale=1.0):
    """Compare autograd and numeric gradients of ``op`` over random inputs.

    ``op`` takes Tensors and returns a Tensor; its sum is the scalar loss.
    """
    rng = rng or np.random.default_rng(0)
    arrays = [rng.standard_normal(shape).astype(np.float32) * scale
              for shape in shapes]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = op(*tensors)
    loss = out.sum()
    loss.backward()

    for i, array in enumerate(arrays):
        def scalar_fn(x, index=i):
            inputs = [Tensor(a) for a in arrays]
            inputs[index] = Tensor(x)
            return float(op(*inputs).sum().data)

        expected = numeric_grad(scalar_fn, array.astype(np.float64))
        actual = tensors[i].grad
        assert actual is not None, f"input {i} got no gradient"
        np.testing.assert_allclose(actual, expected, atol=atol, rtol=rtol)
