"""Property-based fuzzing of the autograd engine.

Builds random expression DAGs from the Tensor op vocabulary and checks
the backward pass against central-difference gradients — the strongest
guarantee that arbitrary model compositions differentiate correctly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor

from .util import numeric_grad

_UNARY = [
    ("relu", lambda t: t.relu()),
    ("sigmoid", lambda t: t.sigmoid()),
    ("tanh", lambda t: t.tanh()),
    ("exp_small", lambda t: (t * 0.3).exp()),
    ("softplus", lambda t: ((t).exp() + 1.0).log()),
    ("square", lambda t: t * t),
    ("scale", lambda t: t * 1.7 - 0.3),
    ("leaky", lambda t: t.leaky_relu(0.2)),
]
_BINARY = [
    ("add", lambda a, b: a + b),
    ("sub", lambda a, b: a - b),
    ("mul", lambda a, b: a * b),
    ("smooth_div", lambda a, b: a / (b * b + 1.0)),
]


def _build_dag(inputs: list[Tensor], plan: list[tuple]) -> Tensor:
    """Deterministically compose a DAG from (kind, op_idx, src_a, src_b)."""
    nodes = list(inputs)
    for kind, op_idx, src_a, src_b in plan:
        if kind == 0:
            name, op = _UNARY[op_idx % len(_UNARY)]
            nodes.append(op(nodes[src_a % len(nodes)]))
        else:
            name, op = _BINARY[op_idx % len(_BINARY)]
            nodes.append(op(nodes[src_a % len(nodes)],
                            nodes[src_b % len(nodes)]))
    return nodes[-1]


@st.composite
def dag_plans(draw):
    n_ops = draw(st.integers(1, 8))
    plan = []
    for _ in range(n_ops):
        plan.append((draw(st.integers(0, 1)),
                     draw(st.integers(0, 7)),
                     draw(st.integers(0, 20)),
                     draw(st.integers(0, 20))))
    return plan


class TestAutogradFuzz:
    @given(dag_plans(), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_dag_gradients_match_numeric(self, plan, seed):
        rng = np.random.default_rng(seed)
        arrays = [rng.uniform(-1.5, 1.5, size=(2, 3)).astype(np.float32)
                  for _ in range(2)]
        tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        out = _build_dag(tensors, plan)
        loss = out.sum()
        loss.backward()

        for i, array in enumerate(arrays):
            def scalar_fn(x, index=i):
                probe = [Tensor(a) for a in arrays]
                probe[index] = Tensor(x)
                return float(_build_dag(probe, plan).sum().data)

            expected = numeric_grad(scalar_fn, array.astype(np.float64),
                                    eps=1e-3)
            actual = tensors[i].grad
            if actual is None:        # input unused by this DAG
                assert np.abs(expected).max() < 1e-4
                continue
            np.testing.assert_allclose(actual, expected, atol=5e-2,
                                       rtol=5e-2)

    @given(dag_plans(), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_forward_deterministic(self, plan, seed):
        rng = np.random.default_rng(seed)
        arrays = [rng.standard_normal((2, 3)).astype(np.float32)
                  for _ in range(2)]
        a = _build_dag([Tensor(x.copy()) for x in arrays], plan)
        b = _build_dag([Tensor(x.copy()) for x in arrays], plan)
        np.testing.assert_array_equal(a.data, b.data)

    @given(dag_plans(), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_gradients_finite(self, plan, seed):
        rng = np.random.default_rng(seed)
        tensors = [Tensor(rng.uniform(-2, 2, (3, 2)).astype(np.float32),
                          requires_grad=True) for _ in range(2)]
        out = _build_dag(tensors, plan)
        out.sum().backward()
        for t in tensors:
            if t.grad is not None:
                assert np.isfinite(t.grad).all()
