"""Tests for the layer zoo and Module machinery."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestConv2d:
    def test_output_shape(self, rng):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 8, 8))
                           .astype(np.float32)))
        assert out.shape == (2, 8, 4, 4)

    def test_bias_optional(self, rng):
        layer = nn.Conv2d(2, 4, 1, bias=False, rng=rng)
        assert layer.bias is None
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight"]

    def test_weight_edit_affects_forward(self, rng):
        # Compression rewrites layer.weight.data in place; the next forward
        # must see the change without re-binding anything.
        layer = nn.Conv2d(1, 1, 3, padding=1, bias=False, rng=rng)
        x = Tensor(rng.standard_normal((1, 1, 4, 4)).astype(np.float32))
        before = layer(x).data.copy()
        layer.weight.data *= 0.0
        after = layer(x).data
        assert np.abs(before).sum() > 0
        assert np.abs(after).sum() == 0


class TestBatchNorm:
    def test_train_normalizes(self, rng):
        bn = nn.BatchNorm2d(4)
        x = Tensor(rng.standard_normal((8, 4, 5, 5)).astype(np.float32) * 3
                   + 2)
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(std, np.ones(4), atol=1e-3)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.standard_normal((16, 2, 4, 4)).astype(np.float32) * 2
                   + 1)
        for _ in range(50):
            bn(x)
        bn.eval()
        out = bn(x)
        # Running stats converge to batch stats, so eval output is close to
        # normalized.
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)),
                                   np.zeros(2), atol=0.1)

    def test_running_stats_saved_in_state_dict(self):
        bn = nn.BatchNorm2d(3)
        state = bn.state_dict()
        assert "running_mean" in state
        assert "running_var" in state

    def test_batchnorm1d(self, rng):
        bn = nn.BatchNorm1d(5)
        x = Tensor(rng.standard_normal((32, 5)).astype(np.float32) * 4 - 1)
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), np.zeros(5),
                                   atol=1e-4)


class TestContainers:
    def test_sequential_forward(self, rng):
        model = nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(4, 2, 3, padding=1, rng=rng),
        )
        out = model(Tensor(rng.standard_normal((1, 1, 6, 6))
                           .astype(np.float32)))
        assert out.shape == (1, 2, 6, 6)

    def test_sequential_indexing(self, rng):
        model = nn.Sequential(nn.ReLU(), nn.Sigmoid())
        assert isinstance(model[0], nn.ReLU)
        assert isinstance(model[1], nn.Sigmoid)
        assert len(model) == 2

    def test_named_parameters_nested(self, rng):
        model = nn.Sequential(nn.Conv2d(1, 2, 3, rng=rng),
                              nn.Conv2d(2, 2, 3, rng=rng))
        names = {n for n, _ in model.named_parameters()}
        assert names == {"0.weight", "0.bias", "1.weight", "1.bias"}

    def test_num_parameters(self, rng):
        layer = nn.Conv2d(2, 3, 3, rng=rng)  # 3*2*3*3 + 3
        assert layer.num_parameters() == 57

    def test_train_eval_propagates(self, rng):
        model = nn.Sequential(nn.ConvBNReLU(1, 2, 3, rng=rng))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestStateDict:
    def test_roundtrip(self, rng):
        src = nn.Sequential(nn.Conv2d(1, 2, 3, rng=rng), nn.BatchNorm2d(2))
        dst = nn.Sequential(
            nn.Conv2d(1, 2, 3, rng=np.random.default_rng(7)),
            nn.BatchNorm2d(2))
        dst.load_state_dict(src.state_dict())
        for (_, p_src), (_, p_dst) in zip(src.named_parameters(),
                                          dst.named_parameters()):
            np.testing.assert_array_equal(p_src.data, p_dst.data)

    def test_shape_mismatch_raises(self, rng):
        src = nn.Conv2d(1, 2, 3, rng=rng)
        dst = nn.Conv2d(1, 3, 3, rng=rng)
        with pytest.raises(ValueError, match="shape mismatch"):
            dst.load_state_dict(src.state_dict())

    def test_unknown_key_raises(self, rng):
        layer = nn.Conv2d(1, 2, 3, rng=rng)
        with pytest.raises(KeyError):
            layer.load_state_dict({"nonsense": np.zeros(3)})

    def test_state_dict_is_copy(self, rng):
        layer = nn.Conv2d(1, 2, 3, rng=rng)
        state = layer.state_dict()
        state["weight"][:] = 0
        assert np.abs(layer.weight.data).sum() > 0


class TestSerialization:
    def test_npz_roundtrip(self, rng, tmp_path):
        model = nn.Sequential(nn.Conv2d(2, 4, 3, rng=rng), nn.BatchNorm2d(4))
        path = str(tmp_path / "weights.npz")
        nn.save_model(model, path)
        clone = nn.Sequential(
            nn.Conv2d(2, 4, 3, rng=np.random.default_rng(1)),
            nn.BatchNorm2d(4))
        nn.load_model(clone, path)
        np.testing.assert_array_equal(clone[0].weight.data,
                                      model[0].weight.data)


class TestTrainingLoop:
    def test_conv_net_learns_identity(self, rng):
        """End-to-end sanity: a small conv net fits a simple target."""
        model = nn.Sequential(
            nn.Conv2d(1, 4, 3, padding=1, rng=rng),
            nn.ReLU(),
            nn.Conv2d(4, 1, 3, padding=1, rng=rng),
        )
        opt = nn.optim.Adam(model.parameters(), lr=1e-2)
        x = Tensor(rng.standard_normal((4, 1, 6, 6)).astype(np.float32))
        target = Tensor(x.data * 2.0)
        first_loss = None
        for _ in range(60):
            opt.zero_grad()
            loss = nn.losses.mse_loss(model(x), target)
            if first_loss is None:
                first_loss = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first_loss * 0.2

    def test_linear_regression_sgd(self, rng):
        layer = nn.Linear(3, 1, rng=rng)
        true_w = np.array([[1.0, -2.0, 0.5]], dtype=np.float32)
        x = rng.standard_normal((64, 3)).astype(np.float32)
        y = x @ true_w.T
        opt = nn.optim.SGD(layer.parameters(), lr=0.1, momentum=0.9)
        for _ in range(100):
            opt.zero_grad()
            loss = nn.losses.mse_loss(layer(Tensor(x)), Tensor(y))
            loss.backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)


class TestOptimMask:
    def test_sgd_mask_freezes_pruned_weights(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        mask = np.zeros_like(layer.weight.data)
        mask[:, :2] = 1.0
        layer.weight.data *= mask
        opt = nn.optim.SGD(layer.parameters(), lr=0.5)
        opt.set_mask(layer.weight, mask)
        x = Tensor(rng.standard_normal((8, 4)).astype(np.float32))
        loss = (layer(x) * layer(x)).sum()
        loss.backward()
        opt.step()
        assert np.all(layer.weight.data[:, 2:] == 0.0)
        assert np.any(layer.weight.data[:, :2] != 0.0)

    def test_adam_mask_freezes_pruned_weights(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        mask = np.ones_like(layer.weight.data)
        mask[0, 0] = 0.0
        layer.weight.data[0, 0] = 0.0
        opt = nn.optim.Adam(layer.parameters(), lr=0.1)
        opt.set_mask(layer.weight, mask)
        x = Tensor(rng.standard_normal((8, 4)).astype(np.float32))
        (layer(x) ** 2.0).sum().backward()
        opt.step()
        assert layer.weight.data[0, 0] == 0.0

    def test_mask_shape_mismatch_raises(self, rng):
        layer = nn.Linear(4, 2, rng=rng)
        opt = nn.optim.SGD(layer.parameters())
        with pytest.raises(ValueError):
            opt.set_mask(layer.weight, np.ones((2, 5)))


class TestLosses:
    def test_smooth_l1_small_errors_quadratic(self):
        pred = Tensor(np.array([0.1], dtype=np.float32))
        target = Tensor(np.array([0.0], dtype=np.float32))
        loss = nn.losses.smooth_l1_loss(pred, target)
        assert loss.item() == pytest.approx(0.5 * 0.01, rel=1e-4)

    def test_smooth_l1_large_errors_linear(self):
        pred = Tensor(np.array([3.0], dtype=np.float32))
        target = Tensor(np.array([0.0], dtype=np.float32))
        loss = nn.losses.smooth_l1_loss(pred, target)
        assert loss.item() == pytest.approx(2.5, rel=1e-4)

    def test_bce_with_logits_matches_manual(self):
        logits = Tensor(np.array([0.0, 2.0], dtype=np.float32))
        target = Tensor(np.array([1.0, 0.0], dtype=np.float32))
        loss = nn.losses.binary_cross_entropy_with_logits(logits, target)
        p = 1 / (1 + np.exp(-np.array([0.0, 2.0])))
        expected = -(np.log(p[0]) + np.log(1 - p[1])) / 2
        assert loss.item() == pytest.approx(expected, rel=1e-4)

    def test_focal_loss_downweights_easy(self):
        easy = Tensor(np.array([6.0], dtype=np.float32))
        hard = Tensor(np.array([-6.0], dtype=np.float32))
        target = Tensor(np.array([1.0], dtype=np.float32))
        easy_loss = nn.losses.focal_loss(easy, target).item()
        hard_loss = nn.losses.focal_loss(hard, target).item()
        assert hard_loss > easy_loss * 100

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]],
                                 dtype=np.float32))
        loss = nn.losses.cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-3

    def test_losses_backprop(self, rng):
        pred = Tensor(rng.standard_normal((4, 3)).astype(np.float32),
                      requires_grad=True)
        target = Tensor(rng.standard_normal((4, 3)).astype(np.float32))
        for fn in (nn.losses.mse_loss, nn.losses.l1_loss,
                   nn.losses.smooth_l1_loss):
            pred.zero_grad()
            fn(pred, target).backward()
            assert pred.grad is not None
            assert np.isfinite(pred.grad).all()
