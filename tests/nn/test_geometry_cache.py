"""Shape-keyed geometry cache: gather im2col and indexed col2im.

Acceptance: the plan-based ``im2col`` is bit-identical to the strided
reference for every dtype (a gather is a pure permutation);
``col2im_indexed`` equals the kernel-loop ``col2im`` exactly on
integer-valued data; restricted scatter plans match masking; and the
LRU cache reuses, evicts, and reports stats correctly.
"""

import numpy as np
import pytest

from repro.nn import functional as F

GEOMETRIES = [
    # (n, c, h, w, kernel, stride, padding)
    (1, 3, 6, 6, 3, 1, 1),
    (2, 4, 7, 5, 3, 2, 1),
    (3, 2, 8, 8, 2, 2, 0),
    (1, 1, 5, 5, 5, 1, 2),
    (2, 3, 9, 7, 1, 1, 0),
]


def _strided_im2col(x, kernel, stride, padding):
    """The pre-cache as_strided implementation, kept as the oracle."""
    n, c, h, w = x.shape
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                       (padding, padding)))
    s = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x, shape=(n, c, kernel, kernel, out_h, out_w),
        strides=(s[0], s[1], s[2], s[3], s[2] * stride, s[3] * stride),
        writeable=False)
    return windows.reshape(n, c * kernel * kernel, out_h * out_w).copy()


class TestIm2colGather:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int64])
    def test_bit_identical_to_strided(self, geometry, dtype):
        n, c, h, w, k, s, p = geometry
        rng = np.random.default_rng(hash(geometry) % 2 ** 32)
        if np.issubdtype(dtype, np.integer):
            x = rng.integers(-500, 500, (n, c, h, w)).astype(dtype)
        else:
            x = rng.standard_normal((n, c, h, w)).astype(dtype)
        expected = _strided_im2col(x, k, s, p)
        got = F.im2col(x, k, s, p)
        assert got.dtype == expected.dtype
        assert got.tobytes() == expected.tobytes()

    def test_batch_rows_match_single_frames(self):
        """Batched gather == stacked per-frame gathers, byte for byte."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 3, 6, 6)).astype(np.float32)
        batched = F.im2col(x, 3, 1, 1)
        for i in range(4):
            single = F.im2col(x[i:i + 1], 3, 1, 1)
            assert batched[i:i + 1].tobytes() == single.tobytes()


class TestCol2imIndexed:
    @pytest.mark.parametrize("geometry", GEOMETRIES)
    def test_matches_kernel_loop_on_integers(self, geometry):
        n, c, h, w, k, s, p = geometry
        rng = np.random.default_rng(hash(geometry) % 2 ** 31)
        positions = ((h + 2 * p - k) // s + 1) * ((w + 2 * p - k) // s + 1)
        cols = rng.integers(-1000, 1000,
                            (n, c * k * k, positions)).astype(np.int64)
        loop = F.col2im(cols, (n, c, h, w), k, s, p)
        indexed = F.col2im_indexed(cols, (n, c, h, w), k, s, p)
        assert (loop == indexed).all()
        # ...and on integer-valued float64, where exactness certifies
        # the order-independent sum.
        indexed_f = F.col2im_indexed(cols.astype(np.float64),
                                     (n, c, h, w), k, s, p)
        assert (indexed_f == loop).all()

    def test_roundtrip_counts_contributors(self):
        """col2im(im2col(ones)) counts how many patches cover a cell."""
        x = np.ones((1, 2, 6, 6), dtype=np.int64)
        cols = F.im2col(x, 3, 1, 1)
        back = F.col2im_indexed(cols, (1, 2, 6, 6), 3, 1, 1)
        # Interior cells are covered by all 9 kernel offsets.
        assert back[0, :, 2:-2, 2:-2].min() == 9
        assert (back == F.col2im(cols, (1, 2, 6, 6), 3, 1, 1)).all()

    def test_restrict_equals_masked_columns(self):
        rng = np.random.default_rng(5)
        c, h, w, k, s, p = 3, 8, 8, 3, 2, 1
        plan = F.col2im_plan(c, h, w, k, s, p)
        cols = rng.integers(-50, 50,
                            (2, plan.rows, plan.positions)).astype(np.int64)
        keep = rng.random(plan.rows) > 0.5
        masked = cols.copy()
        masked[:, ~keep, :] = 0
        full = plan.apply(masked)
        restricted = plan.restrict(keep).apply(
            np.ascontiguousarray(cols[:, keep, :]))
        assert (full == restricted).all()

    def test_restrict_rejects_wrong_mask_size(self):
        plan = F.col2im_plan(2, 6, 6, 3, 1, 1)
        with pytest.raises(ValueError, match="rows"):
            plan.restrict(np.ones(plan.rows + 1, dtype=bool))


class TestGeometryCache:
    def test_hit_on_reuse(self):
        F.clear_geometry_cache()
        x = np.zeros((1, 2, 6, 6), dtype=np.float32)
        F.im2col(x, 3, 1, 1)
        misses = F.geometry_cache_stats()["misses"]
        F.im2col(x, 3, 1, 1)                    # same geometry
        F.im2col(np.zeros((5, 2, 6, 6), np.float32), 3, 1, 1)  # batch too
        stats = F.geometry_cache_stats()
        assert stats["misses"] == misses
        assert stats["hits"] >= 2

    def test_distinct_keys_per_geometry(self):
        F.clear_geometry_cache()
        F.im2col(np.zeros((1, 2, 6, 6), np.float32), 3, 1, 1)
        F.im2col(np.zeros((1, 2, 6, 6), np.float32), 3, 2, 1)
        F.im2col(np.zeros((1, 2, 7, 6), np.float32), 3, 1, 1)
        F.col2im_indexed(np.zeros((1, 18, 36)), (1, 2, 6, 6), 3, 1, 1)
        assert F.geometry_cache_stats()["size"] == 4

    def test_clear_resets(self):
        F.im2col(np.zeros((1, 1, 4, 4), np.float32), 2, 2, 0)
        F.clear_geometry_cache()
        stats = F.geometry_cache_stats()
        assert stats == {"size": 0, "capacity": stats["capacity"],
                         "hits": 0, "misses": 0}

    def test_lru_eviction(self, monkeypatch):
        monkeypatch.setattr(F, "_GEOMETRY_CAPACITY", 3)
        F.clear_geometry_cache()
        for h in range(5, 11):
            F.im2col(np.zeros((1, 1, h, h), np.float32), 3, 1, 1)
        stats = F.geometry_cache_stats()
        assert stats["size"] == 3
        # The most recent geometry is still cached (a hit, no miss).
        misses = stats["misses"]
        F.im2col(np.zeros((1, 1, 10, 10), np.float32), 3, 1, 1)
        assert F.geometry_cache_stats()["misses"] == misses

    def test_plans_are_read_only(self):
        plan = F.im2col_plan(2, 6, 6, 3, 1, 1)
        with pytest.raises(ValueError):
            plan.indices[0, 0] = 0
        scatter = F.col2im_plan(2, 6, 6, 3, 1, 1)
        with pytest.raises(ValueError):
            scatter.contributors[0, 0] = 0
