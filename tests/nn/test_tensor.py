"""Unit tests for the autograd core: ops, broadcasting, graph mechanics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, no_grad

from .util import check_grad


class TestBasicOps:
    def test_add(self):
        check_grad(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_grad(lambda a, b: a + b, (3, 4), (4,))

    def test_add_broadcast_leading(self):
        check_grad(lambda a, b: a + b, (2, 3, 4), (1, 3, 1))

    def test_sub(self):
        check_grad(lambda a, b: a - b, (5,), (5,))

    def test_mul(self):
        check_grad(lambda a, b: a * b, (3, 4), (3, 4))

    def test_mul_broadcast(self):
        check_grad(lambda a, b: a * b, (2, 3), (3,))

    def test_div(self):
        rng = np.random.default_rng(1)
        check_grad(lambda a, b: a / (b * b + 1.0), (3,), (3,), rng=rng)

    def test_neg(self):
        check_grad(lambda a: -a, (4,))

    def test_pow(self):
        check_grad(lambda a: (a * a + 1.0) ** 1.5, (3,))

    def test_matmul_2d(self):
        check_grad(lambda a, b: a @ b, (3, 4), (4, 5))

    def test_matmul_batched(self):
        check_grad(lambda a, b: a @ b, (2, 3, 4), (2, 4, 5))

    def test_scalar_ops(self):
        check_grad(lambda a: a * 2.5 + 1.0, (3, 3))
        check_grad(lambda a: 3.0 - a, (3,))
        check_grad(lambda a: 2.0 / (a * a + 1.0), (3,))


class TestElementwise:
    def test_exp(self):
        check_grad(lambda a: a.exp(), (3, 3), scale=0.5)

    def test_log(self):
        check_grad(lambda a: (a * a + 1.0).log(), (3, 3))

    def test_sqrt(self):
        check_grad(lambda a: (a * a + 1.0).sqrt(), (4,))

    def test_relu(self):
        x = Tensor(np.array([-1.0, 0.5, 2.0], dtype=np.float32),
                   requires_grad=True)
        out = x.relu()
        np.testing.assert_array_equal(out.data, [0.0, 0.5, 2.0])
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 1.0])

    def test_leaky_relu(self):
        x = Tensor(np.array([-2.0, 3.0], dtype=np.float32),
                   requires_grad=True)
        out = x.leaky_relu(0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0], rtol=1e-6)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0], rtol=1e-6)

    def test_sigmoid(self):
        check_grad(lambda a: a.sigmoid(), (3, 4))

    def test_tanh(self):
        check_grad(lambda a: a.tanh(), (3, 4))

    def test_sin_cos(self):
        check_grad(lambda a: a.sin() * a.cos(), (5,))

    def test_abs(self):
        x = Tensor(np.array([-1.5, 2.5], dtype=np.float32),
                   requires_grad=True)
        out = x.abs()
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [-1.0, 1.0])

    def test_clip(self):
        x = Tensor(np.array([-3.0, 0.0, 3.0], dtype=np.float32),
                   requires_grad=True)
        out = x.clip(-1.0, 1.0)
        np.testing.assert_array_equal(out.data, [-1.0, 0.0, 1.0])
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        check_grad(lambda a: a.sum(), (3, 4))

    def test_sum_axis(self):
        check_grad(lambda a: a.sum(axis=1), (3, 4))

    def test_sum_keepdims(self):
        check_grad(lambda a: a.sum(axis=0, keepdims=True), (3, 4))

    def test_mean(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3),
                   requires_grad=True)
        out = x.mean()
        assert out.item() == pytest.approx(2.5)
        out.backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 1 / 6), rtol=1e-5)

    def test_mean_axis_tuple(self):
        check_grad(lambda a: a.mean(axis=(0, 2), keepdims=True), (2, 3, 4))

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]], dtype=np.float32),
                   requires_grad=True)
        out = x.max(axis=1)
        np.testing.assert_array_equal(out.data, [5.0, 7.0])
        out.sum().backward()
        np.testing.assert_array_equal(x.grad, [[0, 1], [1, 0]])

    def test_max_all(self):
        x = Tensor(np.array([1.0, 9.0, 3.0], dtype=np.float32),
                   requires_grad=True)
        assert x.max().item() == 9.0

    def test_var(self):
        x = np.random.default_rng(0).standard_normal((4, 5)).astype(np.float32)
        t = Tensor(x)
        np.testing.assert_allclose(t.var().item(), x.var(), rtol=1e-4)


class TestShapes:
    def test_reshape(self):
        check_grad(lambda a: a.reshape(6) * 2.0, (2, 3))

    def test_transpose(self):
        check_grad(lambda a: a.transpose(1, 0) @ a, (3, 4))

    def test_getitem(self):
        x = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4),
                   requires_grad=True)
        out = x[1]
        out.sum().backward()
        expected = np.zeros((3, 4))
        expected[1] = 1.0
        np.testing.assert_array_equal(x.grad, expected)

    def test_getitem_fancy(self):
        x = Tensor(np.arange(10, dtype=np.float32), requires_grad=True)
        idx = np.array([1, 1, 3])
        out = x[idx]
        out.sum().backward()
        expected = np.zeros(10)
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_array_equal(x.grad, expected)

    def test_pad2d(self):
        check_grad(lambda a: a.pad2d(1), (1, 2, 3, 3))

    def test_concatenate(self):
        check_grad(lambda a, b: Tensor.concatenate([a, b], axis=1),
                   (2, 3), (2, 2))

    def test_stack(self):
        check_grad(lambda a, b: Tensor.stack([a, b], axis=0), (3,), (3,))

    def test_softmax_sums_to_one(self):
        x = Tensor(np.random.default_rng(0).standard_normal((4, 7))
                   .astype(np.float32))
        probs = x.softmax(axis=-1)
        np.testing.assert_allclose(probs.data.sum(axis=-1), np.ones(4),
                                   rtol=1e-5)

    def test_log_softmax_grad(self):
        check_grad(lambda a: a.log_softmax(axis=-1), (3, 5))


class TestGraphMechanics:
    def test_no_grad_blocks_recording(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._parents == ()

    def test_nested_no_grad(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with no_grad():
            with no_grad():
                pass
            y = x + 1.0
        assert not y.requires_grad
        z = x + 1.0
        assert z.requires_grad

    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 5
        y.backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        out = a * b  # d/dx (2x*(x+1)) = 4x + 2 = 14
        out.backward()
        np.testing.assert_allclose(x.grad, [14.0])

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_raises(self):
        x = Tensor(np.ones(1))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_detach_cuts_graph(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = (x * 3.0).detach() * x
        y.backward()
        np.testing.assert_allclose(x.grad, [6.0])

    def test_zero_grad(self):
        x = Tensor(np.ones(2, dtype=np.float32), requires_grad=True)
        (x * 2.0).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_float64_input_downcast(self):
        x = Tensor(np.ones(3, dtype=np.float64))
        assert x.dtype == np.float32

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.ones(1, dtype=np.float32), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 0.001
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestHypothesisInvariants:
    @given(st.lists(st.floats(-1e3, 1e3), min_size=1, max_size=16))
    @settings(max_examples=30, deadline=None)
    def test_add_commutes(self, values):
        x = Tensor(np.array(values, dtype=np.float32))
        y = Tensor(np.array(values[::-1], dtype=np.float32))
        np.testing.assert_array_equal((x + y).data, (y + x).data)

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_reshape_roundtrip(self, rows, cols):
        rng = np.random.default_rng(rows * 10 + cols)
        x = Tensor(rng.standard_normal((rows, cols)).astype(np.float32))
        back = x.reshape(rows * cols).reshape(rows, cols)
        np.testing.assert_array_equal(back.data, x.data)

    @given(st.lists(st.floats(-100, 100), min_size=2, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_softmax_bounded(self, values):
        x = Tensor(np.array(values, dtype=np.float32))
        probs = x.softmax().data
        assert np.all(probs >= 0.0)
        assert np.all(probs <= 1.0 + 1e-6)

    @given(st.lists(st.floats(-10, 10), min_size=1, max_size=12))
    @settings(max_examples=30, deadline=None)
    def test_sum_linear_in_scale(self, values):
        x = Tensor(np.array(values, dtype=np.float32))
        assert (x * 2.0).sum().item() == pytest.approx(2 * x.sum().item(),
                                                       rel=1e-4, abs=1e-4)
