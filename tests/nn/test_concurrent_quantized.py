"""Forward-path caches under concurrent callers ≡ serial execution.

Regression suite for the serving-era thread-safety sweep: the global
geometry-plan LRU (`repro.nn.functional._GEOMETRY_CACHE`), the
per-executor ``_plans`` memo dicts (`repro.nn.quantized`), the
``restrict_to_window`` memoization, and the telemetry counters are all
hammered from multiple threads against the bit-identical-to-serial
contract.  Before the sweep, racing threads could interleave
get/evict/insert on those dicts mid-mutation; these tests fail loudly
(wrong bits, lost counter increments, cache overgrowth) if that
regresses.
"""

import threading

import numpy as np

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.occupancy import activate_occupancy
from repro.nn.quantized import (_MAX_SHAPE_PLANS, QuantizedConv2d,
                                QuantizedConvTranspose2d, QuantizedLinear,
                                activation_scale)
from repro.runtime.telemetry import LayerTelemetry

THREADS = 4
ROUNDS = 8


def _executor_stack(seed=0):
    """One executor of each kind with a pile of input frames."""
    rng = np.random.default_rng(seed)
    conv = nn.Conv2d(4, 4, 3, padding=1, rng=rng)
    deconv = nn.ConvTranspose2d(4, 4, 2, stride=2, rng=rng)
    linear = nn.Linear(8, 4, rng=rng)
    stack = []
    for layer, cls, shape in ((conv, QuantizedConv2d, (1, 4, 6, 6)),
                              (deconv, QuantizedConvTranspose2d,
                               (1, 4, 3, 3)),
                              (linear, QuantizedLinear, (1, 20, 8))):
        frames = [rng.standard_normal(shape).astype(np.float32)
                  for _ in range(6)]
        scale = activation_scale(np.concatenate(frames), 8)
        executor = cls.from_float(layer, scale, weight_bits=8,
                                  activation_bits=8)
        stack.append((executor, [Tensor(f) for f in frames]))
    return stack


def _hammer(worker, threads=THREADS):
    """Run ``worker(thread_index)`` on N threads, re-raising failures."""
    errors = []
    barrier = threading.Barrier(threads)

    def run(index):
        try:
            barrier.wait()
            worker(index)
        except BaseException as exc:   # noqa: BLE001 - reraised below
            errors.append(exc)

    pool = [threading.Thread(target=run, args=(i,))
            for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    if errors:
        raise errors[0]


def test_shared_executors_bit_identical_under_threads():
    """Two+ threads hammering shared executors (cold caches, so the
    plan memos race on every shape) reproduce serial bits exactly."""
    stack = _executor_stack()
    serial = [[executor.forward(frame).data for frame in frames]
              for executor, frames in stack]

    for _ in range(ROUNDS):
        F.clear_geometry_cache()
        for executor, _ in stack:
            getattr(executor, "_plans", {}).clear()
        outputs = [[None] * len(frames) for _, frames in stack]

        def worker(index):
            # Each thread walks the frames with a different stride
            # phase so threads collide on fresh shapes constantly.
            for step in range(len(stack[0][1])):
                for row, (executor, frames) in enumerate(stack):
                    pos = (index + step) % len(frames)
                    out = executor.forward(frames[pos]).data
                    expected = serial[row][pos]
                    assert np.array_equal(out, expected)
                    outputs[row][pos] = out

        _hammer(worker)
        for row, per_frame in enumerate(outputs):
            for pos, out in enumerate(per_frame):
                assert out is not None
                assert np.array_equal(out, serial[row][pos])


def test_sparse_windows_bit_identical_under_threads():
    """The restrict_to_window memo path (sparse contexts) races
    safely: per-thread occupancy contexts, shared executors."""
    stack = _executor_stack(seed=3)
    serial = []
    for executor, frames in stack:
        with activate_occupancy():
            serial.append([executor.forward(f).data for f in frames])

    def worker(index):
        for executor, frames in ((ex, fr) for ex, fr in stack):
            with activate_occupancy():
                for pos, frame in enumerate(frames):
                    out = executor.forward(frame).data
                    row = [r for r, (ex, _) in enumerate(stack)
                           if ex is executor][0]
                    assert np.array_equal(out, serial[row][pos])

    for _ in range(ROUNDS // 2):
        for executor, _ in stack:
            getattr(executor, "_plans", {}).clear()
        F.clear_geometry_cache()
        _hammer(worker)


def test_plan_memo_never_overgrows_under_threads():
    """Concurrent insertions respect the FIFO bound — no unbounded
    growth through racing evictions."""
    rng = np.random.default_rng(1)
    conv = nn.Conv2d(2, 2, 3, padding=1, rng=rng)
    frames = [rng.standard_normal((1, 2, h, h)).astype(np.float32)
              for h in range(4, 4 + 2 * _MAX_SHAPE_PLANS)]
    scale = activation_scale(np.concatenate(
        [f.reshape(1, -1) for f in frames], axis=1), 8)
    executor = QuantizedConv2d.from_float(conv, scale, weight_bits=8,
                                          activation_bits=8)
    serial = [executor.forward(Tensor(f)).data for f in frames]
    executor._plans.clear()

    def worker(index):
        for offset in range(len(frames)):
            pos = (index * 3 + offset) % len(frames)
            out = executor.forward(Tensor(frames[pos])).data
            assert np.array_equal(out, serial[pos])

    _hammer(worker)
    assert len(executor._plans) <= _MAX_SHAPE_PLANS


def test_geometry_cache_converges_to_one_plan_object():
    """Racing builders of the same geometry key converge on a single
    canonical plan (the re-check-under-lock path)."""
    F.clear_geometry_cache()
    stack = _executor_stack(seed=5)
    executor, frames = stack[0]
    executor._plans.clear()

    plans = []
    lock = threading.Lock()

    def worker(index):
        out = executor.forward(frames[0])
        with lock:
            plans.append(executor._shape_plan(*frames[0].data.shape[1:]))
        assert out.data is not None

    _hammer(worker)
    assert all(plan is plans[0] for plan in plans)


def test_telemetry_counters_exact_under_threads():
    """record_* from N threads loses no increments: totals equal the
    serial sum regardless of interleaving."""
    counter = LayerTelemetry(layer="hammered")
    per_thread = 500

    def worker(index):
        for step in range(per_thread):
            counter.record_quantization(total=10, saturated=1)
            counter.record_matmul(frames=1, macs=100,
                                  columns_total=8, columns_skipped=2)
            counter.record_dynamic(total=4, skipped=1)
            counter.record_accumulator(-step, step)

    _hammer(worker)
    expected = THREADS * per_thread
    assert counter.activations_total == 10 * expected
    assert counter.activations_saturated == expected
    assert counter.calls == expected
    assert counter.macs == 100 * expected
    assert counter.columns_total == 8 * expected
    assert counter.columns_skipped == 2 * expected
    assert counter.dynamic_columns_total == 4 * expected
    assert counter.dynamic_columns_skipped == expected
    assert counter.acc_min == -(per_thread - 1)
    assert counter.acc_max == per_thread - 1
    # Snapshots are plain dataclass copies — equality and to_json stay
    # field-based despite the internal lock.
    snap = counter.snapshot()
    assert snap == counter
    assert "lock" not in str(snap.to_json() if hasattr(snap, "to_json")
                             else {})


def test_shared_lowered_program_bit_identical_under_threads():
    """Two threads pushing frames through one shared LoweredProgram
    (attachment is exclusive per program) reproduce solo bits."""
    from repro.core import UPAQCompressor
    from repro.fuzzing import build_fuzz_model, build_preset_config
    from repro.ir.lowering import lower_executors
    from repro.pointcloud import SceneGenerator
    from repro.runtime.executors import LoweredProgram

    base = build_fuzz_model("tiny")
    outcome = UPAQCompressor(build_preset_config("hck")).compress(
        base, *base.example_inputs())
    model = outcome.model
    model.eval()
    program = LoweredProgram(lower_executors(outcome.ir, model),
                             mode="lowered")
    generator = SceneGenerator(seed=0)
    scenes = [generator.generate(i, with_image=False) for i in range(4)]
    with program.attached(model):
        serial = [model.predict(scene) for scene in scenes]

    def boxes(result):
        return [(b.x, b.y, b.z, b.dx, b.dy, b.dz, b.yaw, b.label,
                 b.score) for b in result.boxes]

    def worker(index):
        for scene, expected in zip(scenes, serial):
            with program.attached(model):
                got = model.predict(scene)
            assert boxes(got) == boxes(expected)

    _hammer(worker, threads=2)


def test_plans_lock_exists_after_compaction():
    """_compact rebuilds must re-arm the memo lock (the state the
    double-checked helper relies on)."""
    stack = _executor_stack(seed=7)
    for executor, frames in stack:
        if not hasattr(executor, "_plans"):
            continue
        assert isinstance(executor._plans_lock, type(threading.Lock()))
        executor.forward(frames[0])
        assert isinstance(executor._plans_lock, type(threading.Lock()))
