"""Tests for learning-rate schedulers."""

import numpy as np
import pytest

from repro import nn
from repro.nn.schedulers import CosineAnnealing, StepDecay, WarmupWrapper


@pytest.fixture
def optimizer():
    layer = nn.Linear(2, 2, rng=np.random.default_rng(0))
    return nn.optim.SGD(layer.parameters(), lr=0.1)


class TestStepDecay:
    def test_decays_at_milestones(self, optimizer):
        sched = StepDecay(optimizer, milestones=[3, 6], gamma=0.5)
        lrs = [sched.step() for _ in range(7)]
        assert lrs[0] == pytest.approx(0.1)
        assert lrs[2] == pytest.approx(0.05)    # step 3 hit first milestone
        assert lrs[5] == pytest.approx(0.025)
        assert lrs[6] == pytest.approx(0.025)

    def test_updates_optimizer(self, optimizer):
        sched = StepDecay(optimizer, milestones=[1], gamma=0.1)
        sched.step()
        assert optimizer.lr == pytest.approx(0.01)


class TestCosineAnnealing:
    def test_endpoints(self, optimizer):
        sched = CosineAnnealing(optimizer, total_steps=100, min_lr=0.001)
        first = sched.lr_at(0)
        last = sched.lr_at(100)
        assert first == pytest.approx(0.1)
        assert last == pytest.approx(0.001)

    def test_monotone_decreasing(self, optimizer):
        sched = CosineAnnealing(optimizer, total_steps=50)
        lrs = [sched.step() for _ in range(50)]
        assert all(a >= b - 1e-9 for a, b in zip(lrs, lrs[1:]))

    def test_clamps_past_total(self, optimizer):
        sched = CosineAnnealing(optimizer, total_steps=10, min_lr=0.01)
        assert sched.lr_at(1000) == pytest.approx(0.01)


class TestWarmup:
    def test_linear_rampup(self, optimizer):
        inner = StepDecay(optimizer, milestones=[], gamma=1.0)
        sched = WarmupWrapper(inner, warmup_steps=4)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [0.025, 0.05, 0.075, 0.1],
                                   rtol=1e-6)

    def test_delegates_after_warmup(self, optimizer):
        inner = StepDecay(optimizer, milestones=[2], gamma=0.5)
        sched = WarmupWrapper(inner, warmup_steps=2)
        for _ in range(2):
            sched.step()
        lrs = [sched.step() for _ in range(3)]
        assert lrs[0] == pytest.approx(0.1)      # inner step 1
        assert lrs[1] == pytest.approx(0.05)     # inner milestone at 2
