"""Tests for computational-graph extraction (UPAQ Algorithm 1 substrate)."""

import numpy as np
import networkx as nx
import pytest

from repro import nn
from repro.nn import Tensor, compute_graph, layer_map, topological_layers


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class ResidualBlock(nn.Module):
    def __init__(self, channels, rng):
        super().__init__()
        self.conv1 = nn.Conv2d(channels, channels, 3, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(channels, channels, 3, padding=1, rng=rng)

    def forward(self, x):
        return (self.conv2(self.conv1(x).relu()) + x).relu()


class TwoBranch(nn.Module):
    """A root conv feeding two parallel leaf convs, then fused."""

    def __init__(self, rng):
        super().__init__()
        self.stem = nn.Conv2d(1, 4, 3, padding=1, rng=rng)
        self.branch_a = nn.Conv2d(4, 4, 3, padding=1, rng=rng)
        self.branch_b = nn.Conv2d(4, 4, 3, padding=1, rng=rng)
        self.fuse = nn.Conv2d(8, 2, 1, rng=rng)

    def forward(self, x):
        stem = self.stem(x).relu()
        a = self.branch_a(stem).relu()
        b = self.branch_b(stem).relu()
        return self.fuse(Tensor.concatenate([a, b], axis=1))


class TestLayerMap:
    def test_finds_kernel_layers_only(self, rng):
        model = nn.Sequential(nn.Conv2d(1, 2, 3, rng=rng),
                              nn.BatchNorm2d(2),
                              nn.ReLU(),
                              nn.Conv2d(2, 2, 3, rng=rng))
        layers = layer_map(model)
        assert set(layers) == {"0", "3"}

    def test_includes_linear_and_deconv(self, rng):
        class Mixed(nn.Module):
            def __init__(self):
                super().__init__()
                self.conv = nn.Conv2d(1, 2, 3, rng=rng)
                self.deconv = nn.ConvTranspose2d(2, 2, 2, stride=2, rng=rng)
                self.head = nn.Linear(8, 4, rng=rng)

            def forward(self, x):
                h = self.deconv(self.conv(x))
                return self.head(h.reshape(h.shape[0], -1))

        assert set(layer_map(Mixed())) == {"conv", "deconv", "head"}


class TestComputeGraph:
    def test_sequential_chain(self, rng):
        model = nn.Sequential(
            nn.Conv2d(1, 2, 3, padding=1, rng=rng),
            nn.BatchNorm2d(2),
            nn.ReLU(),
            nn.Conv2d(2, 4, 3, padding=1, rng=rng),
            nn.Conv2d(4, 2, 1, rng=rng),
        )
        x = Tensor(rng.standard_normal((1, 1, 6, 6)).astype(np.float32))
        graph = compute_graph(model, x)
        assert set(graph.edges) == {("0", "3"), ("3", "4")}

    def test_residual_block_edges(self, rng):
        model = ResidualBlock(3, rng)
        x = Tensor(rng.standard_normal((1, 3, 5, 5)).astype(np.float32))
        graph = compute_graph(model, x)
        assert ("conv1", "conv2") in graph.edges

    def test_two_branch_topology(self, rng):
        model = TwoBranch(rng)
        x = Tensor(rng.standard_normal((1, 1, 6, 6)).astype(np.float32))
        graph = compute_graph(model, x)
        assert ("stem", "branch_a") in graph.edges
        assert ("stem", "branch_b") in graph.edges
        assert ("branch_a", "fuse") in graph.edges
        assert ("branch_b", "fuse") in graph.edges
        # Branches are parallel, not chained.
        assert ("branch_a", "branch_b") not in graph.edges
        assert ("stem", "fuse") not in graph.edges

    def test_graph_is_acyclic(self, rng):
        model = TwoBranch(rng)
        x = Tensor(rng.standard_normal((1, 1, 6, 6)).astype(np.float32))
        graph = compute_graph(model, x)
        assert nx.is_directed_acyclic_graph(graph)

    def test_topological_order(self, rng):
        model = TwoBranch(rng)
        x = Tensor(rng.standard_normal((1, 1, 6, 6)).astype(np.float32))
        order = topological_layers(compute_graph(model, x))
        assert order.index("stem") < order.index("branch_a")
        assert order.index("branch_a") < order.index("fuse")

    def test_restores_training_mode(self, rng):
        model = ResidualBlock(2, rng)
        model.train()
        compute_graph(model,
                      Tensor(rng.standard_normal((1, 2, 4, 4))
                             .astype(np.float32)))
        assert model.training

    def test_multi_output_model(self, rng):
        class TwoHeads(nn.Module):
            def __init__(self):
                super().__init__()
                self.backbone = nn.Conv2d(1, 4, 3, padding=1, rng=rng)
                self.head_cls = nn.Conv2d(4, 2, 1, rng=rng)
                self.head_reg = nn.Conv2d(4, 6, 1, rng=rng)

            def forward(self, x):
                feats = self.backbone(x).relu()
                return {"cls": self.head_cls(feats),
                        "reg": self.head_reg(feats)}

        model = TwoHeads()
        x = Tensor(rng.standard_normal((1, 1, 4, 4)).astype(np.float32))
        graph = compute_graph(model, x)
        assert ("backbone", "head_cls") in graph.edges
        assert ("backbone", "head_reg") in graph.edges
