"""Tests for convolution/pooling primitives, including gradient checks."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F

from .util import check_grad


def _reference_conv2d(x, w, b, stride, padding):
    """Direct (slow) convolution for cross-checking im2col results."""
    n, c, h, w_in = x.shape
    out_c, _, k, _ = w.shape
    out_h = (h + 2 * padding - k) // stride + 1
    out_w = (w_in + 2 * padding - k) // stride + 1
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, out_c, out_h, out_w), dtype=np.float64)
    for ni in range(n):
        for oc in range(out_c):
            for i in range(out_h):
                for j in range(out_w):
                    patch = xp[ni, :, i * stride:i * stride + k,
                               j * stride:j * stride + k]
                    out[ni, oc, i, j] = (patch * w[oc]).sum()
            if b is not None:
                out[ni, oc] += b[oc]
    return out


class TestIm2col:
    def test_roundtrip_shapes(self):
        x = np.random.default_rng(0).standard_normal((2, 3, 8, 8)) \
            .astype(np.float32)
        cols = F.im2col(x, kernel=3, stride=1, padding=1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_col2im_adjoint(self):
        # col2im must be the adjoint of im2col: <im2col(x), c> == <x, col2im(c)>
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        cols = rng.standard_normal((1, 2 * 9, 36)).astype(np.float32)
        lhs = (F.im2col(x, 3, 1, 1) * cols).sum()
        rhs = (x * F.col2im(cols, x.shape, 3, 1, 1)).sum()
        assert lhs == pytest.approx(rhs, rel=1e-4)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_reference(self, stride, padding):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 3, 7, 7)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        b = rng.standard_normal(4).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b),
                       stride=stride, padding=padding)
        ref = _reference_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-4)

    def test_1x1_conv(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((1, 4, 5, 5)).astype(np.float32)
        w = rng.standard_normal((2, 4, 1, 1)).astype(np.float32)
        out = F.conv2d(Tensor(x), Tensor(w))
        ref = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out.data, ref, rtol=1e-4, atol=1e-5)

    def test_gradients(self):
        check_grad(
            lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=1),
            (1, 2, 5, 5), (3, 2, 3, 3), (3,))

    def test_gradients_strided(self):
        check_grad(
            lambda x, w: F.conv2d(x, w, stride=2, padding=1),
            (1, 2, 6, 6), (2, 2, 3, 3))

    def test_channel_mismatch_raises(self):
        x = Tensor(np.zeros((1, 3, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((2, 4, 3, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="channel mismatch"):
            F.conv2d(x, w)

    def test_rectangular_kernel_raises(self):
        x = Tensor(np.zeros((1, 2, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((2, 2, 3, 2), dtype=np.float32))
        with pytest.raises(ValueError, match="square"):
            F.conv2d(x, w)


class TestConvTranspose2d:
    def test_shape_inverts_conv(self):
        rng = np.random.default_rng(4)
        x = Tensor(rng.standard_normal((1, 4, 5, 5)).astype(np.float32))
        w = Tensor(rng.standard_normal((4, 2, 2, 2)).astype(np.float32))
        out = F.conv_transpose2d(x, w, stride=2)
        assert out.shape == (1, 2, 10, 10)

    def test_gradients(self):
        check_grad(
            lambda x, w, b: F.conv_transpose2d(x, w, b, stride=2),
            (1, 2, 3, 3), (2, 2, 2, 2), (2,))

    def test_adjoint_of_conv(self):
        # conv_transpose with weight W applied to y equals the input-grad of
        # conv with the same weight: <conv(x), y> == <x, conv_T(y)>.
        rng = np.random.default_rng(5)
        x = rng.standard_normal((1, 3, 6, 6)).astype(np.float32)
        w = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        y = rng.standard_normal((1, 5, 4, 4)).astype(np.float32)
        conv_out = F.conv2d(Tensor(x), Tensor(w)).data
        wt = Tensor(w.transpose(0, 1, 2, 3))  # conv_T expects (in,out,k,k)
        back = F.conv_transpose2d(Tensor(y), wt).data
        assert (conv_out * y).sum() == pytest.approx(
            (x * back).sum(), rel=1e-3)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), kernel=2)
        np.testing.assert_array_equal(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_routes_to_max(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4),
                   requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_array_equal(x.grad[0, 0], expected)

    def test_avg_pool_values(self):
        x = np.ones((1, 2, 4, 4), dtype=np.float32) * 3.0
        out = F.avg_pool2d(Tensor(x), kernel=2)
        np.testing.assert_allclose(out.data, np.full((1, 2, 2, 2), 3.0))

    def test_avg_pool_grad(self):
        check_grad(lambda x: F.avg_pool2d(x, 2), (1, 2, 4, 4))


class TestUpsample:
    def test_values(self):
        x = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        out = F.upsample_nearest2d(Tensor(x.reshape(1, 1, 2, 2)), 2)
        np.testing.assert_array_equal(
            out.data[0, 0],
            [[1, 1, 2, 2], [1, 1, 2, 2], [3, 3, 4, 4], [3, 3, 4, 4]])

    def test_grad(self):
        check_grad(lambda x: F.upsample_nearest2d(x, 2), (1, 2, 3, 3))


class TestScatter:
    def test_scatter_places_features(self):
        feats = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32))
        indices = np.array([[0, 1], [2, 3]])
        out = F.scatter_to_grid(feats, indices, (3, 4))
        assert out.shape == (1, 2, 3, 4)
        assert out.data[0, 0, 0, 1] == 1.0
        assert out.data[0, 1, 0, 1] == 2.0
        assert out.data[0, 0, 2, 3] == 3.0
        assert out.data[0, 1, 2, 3] == 4.0
        assert out.data.sum() == pytest.approx(10.0)

    def test_scatter_grad(self):
        feats = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        indices = np.array([[0, 0], [1, 1], [2, 2]])
        out = F.scatter_to_grid(feats, indices, (3, 3))
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(feats.grad, np.full((3, 2), 2.0))


class TestLinear:
    def test_matches_numpy(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        w = rng.standard_normal((5, 3)).astype(np.float32)
        b = rng.standard_normal(5).astype(np.float32)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b, rtol=1e-5)

    def test_grad(self):
        check_grad(lambda x, w, b: F.linear(x, w, b), (4, 3), (5, 3), (5,))
