"""Tests for integer-arithmetic quantized inference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import Tensor
from repro.nn.quantized import (QuantizedConv2d, activation_scale,
                                quantize_activation)


@pytest.fixture
def conv():
    return nn.Conv2d(3, 8, 3, padding=1, rng=np.random.default_rng(0))


@pytest.fixture
def activation():
    rng = np.random.default_rng(1)
    return rng.standard_normal((2, 3, 8, 8)).astype(np.float32)


class TestActivationQuantization:
    def test_scale_covers_range(self, activation):
        scale = activation_scale(activation, bits=8)
        codes = quantize_activation(activation, scale, bits=8)
        assert codes.max() <= 127
        assert codes.min() >= -127
        assert codes.max() == 127 or codes.min() == -127

    def test_zero_activation(self):
        scale = activation_scale(np.zeros((1, 1, 2, 2)), bits=8)
        assert scale == 1.0


class TestQuantizedConv:
    def test_integer_path_matches_fake_quant_exactly(self, conv,
                                                     activation):
        """The deployment-critical property: int arithmetic ≡ fake quant."""
        scale = activation_scale(activation)
        qconv = QuantizedConv2d.from_float(conv, scale)
        x = Tensor(activation)
        integer_out = qconv(x)
        reference = qconv.fake_quant_reference(x)
        np.testing.assert_allclose(integer_out.data, reference.data,
                                   rtol=1e-5, atol=1e-5)

    def test_close_to_float_convolution(self, conv, activation):
        scale = activation_scale(activation)
        qconv = QuantizedConv2d.from_float(conv, scale)
        float_out = conv(Tensor(activation))
        quant_out = qconv(Tensor(activation))
        # 8-bit weights + activations: a few percent relative error.
        err = np.abs(float_out.data - quant_out.data).max()
        assert err < 0.1 * np.abs(float_out.data).max()

    def test_accumulator_is_integer(self, conv, activation):
        # With bias removed, output values must be integer multiples of
        # the per-filter rescale factor.
        conv_no_bias = nn.Conv2d(3, 4, 3, padding=1, bias=False,
                                 rng=np.random.default_rng(2))
        scale = activation_scale(activation)
        qconv = QuantizedConv2d.from_float(conv_no_bias, scale)
        out = qconv(Tensor(activation)).data
        rescale = qconv.weight_scales[:, None, None] * qconv.input_scale
        accs = out / rescale[None]
        np.testing.assert_allclose(accs, np.round(accs), atol=1e-3)

    def test_lower_bits_larger_error(self, conv, activation):
        float_out = conv(Tensor(activation)).data

        def max_err(bits):
            bit_scale = activation_scale(activation, bits=bits)
            q = QuantizedConv2d.from_float(conv, bit_scale,
                                           weight_bits=bits,
                                           activation_bits=bits)
            return np.abs(q(Tensor(activation)).data - float_out).max()

        assert max_err(4) > max_err(8) > max_err(12)

    @given(st.integers(4, 8))
    @settings(max_examples=5, deadline=None)
    def test_equivalence_across_bitwidths(self, bits):
        rng = np.random.default_rng(bits)
        conv = nn.Conv2d(2, 3, 3, rng=rng)
        x = rng.standard_normal((1, 2, 6, 6)).astype(np.float32)
        scale = activation_scale(x)
        qconv = QuantizedConv2d.from_float(conv, scale, weight_bits=bits,
                                           activation_bits=bits)
        np.testing.assert_allclose(
            qconv(Tensor(x)).data,
            qconv.fake_quant_reference(Tensor(x)).data,
            rtol=1e-5, atol=1e-5)
