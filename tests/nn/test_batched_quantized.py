"""Batched ≡ sequential bit-for-bit parity of the integer executors.

The tentpole contract of micro-batched lowered execution: running a
whole batch through one ``forward``/``reference`` call must produce
*byte-identical* outputs to stacking the per-frame calls — across
bitwidths (4/8/16), all four pattern families, all three executor
kinds, and batch sizes 1/2/5 — and the telemetry counters of the
batched call must equal the sum of the per-frame counters.  The
certified-gemm fast path and the einsum fallback must agree too.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.patterns import PATTERN_TYPES, generate_pattern
from repro.nn import Tensor
from repro.nn.quantized import (QuantizedConv2d, QuantizedConvTranspose2d,
                                QuantizedLinear, activation_scale)
from repro.runtime.telemetry import LayerTelemetry

BITWIDTHS = (4, 8, 16)
BATCH_SIZES = (1, 2, 5)


def _pattern(pattern_type):
    return generate_pattern(2, 3, np.random.default_rng(7), pattern_type)


def _make_executor(kind, bits, pattern_type):
    pattern = _pattern(pattern_type)
    act_bits = max(8, bits)
    rng = np.random.default_rng(hash((kind, bits, pattern_type)) % 2 ** 32)
    if kind == "conv":
        layer = nn.Conv2d(2, 4, 3, padding=1,
                          rng=np.random.default_rng(1))
        layer.weight.data = layer.weight.data \
            * pattern.mask()[None, None]
        frames = [Tensor(rng.standard_normal((1, 2, 6, 6))
                         .astype(np.float32)) for _ in range(5)]
        scale = activation_scale(
            np.concatenate([f.data for f in frames]), act_bits)
        executor = QuantizedConv2d.from_float(
            layer, scale, weight_bits=bits, activation_bits=act_bits)
    elif kind == "deconv":
        layer = nn.ConvTranspose2d(2, 3, 3, stride=2, padding=1,
                                   rng=np.random.default_rng(2))
        layer.weight.data = layer.weight.data \
            * pattern.mask()[None, None]
        frames = [Tensor(rng.standard_normal((1, 2, 6, 6))
                         .astype(np.float32)) for _ in range(5)]
        scale = activation_scale(
            np.concatenate([f.data for f in frames]), act_bits)
        executor = QuantizedConvTranspose2d.from_float(
            layer, scale, weight_bits=bits, activation_bits=act_bits)
    else:
        layer = nn.Linear(18, 5, rng=np.random.default_rng(3))
        feature_mask = np.tile(pattern.mask().reshape(-1), 2)
        layer.weight.data = layer.weight.data * feature_mask[None, :]
        frames = [Tensor(rng.standard_normal((1, 4, 18))
                         .astype(np.float32)) for _ in range(5)]
        scale = activation_scale(
            np.concatenate([f.data for f in frames]), act_bits)
        executor = QuantizedLinear.from_float(
            layer, scale, weight_bits=bits, activation_bits=act_bits)
    return executor, frames


def _stack(frames):
    return Tensor(np.concatenate([f.data for f in frames], axis=0))


@pytest.mark.parametrize("batch", BATCH_SIZES)
@pytest.mark.parametrize("kind", ["conv", "deconv", "linear"])
@pytest.mark.parametrize("pattern_type", PATTERN_TYPES)
@pytest.mark.parametrize("bits", BITWIDTHS)
class TestBatchedBitForBit:
    def test_forward_and_reference(self, bits, pattern_type, kind, batch):
        executor, frames = _make_executor(kind, bits, pattern_type)
        frames = frames[:batch]
        batched = _stack(frames)
        for run in (executor.forward, executor.reference):
            whole = run(batched).data
            stacked = np.concatenate(
                [run(f).data for f in frames], axis=0)
            assert whole.shape == stacked.shape
            assert whole.tobytes() == stacked.tobytes()

    def test_gemm_and_fallback_agree(self, bits, pattern_type, kind,
                                     batch):
        """The certified float64 gemm and the int64 einsum fallback are
        the same exact integer accumulation — byte-equal outputs."""
        executor, frames = _make_executor(kind, bits, pattern_type)
        batched = _stack(frames[:batch])
        assert executor._use_gemm      # all repo configs certify
        fast = executor.forward(batched).data
        fast_ref = executor.reference(batched).data
        executor._use_gemm = False
        slow = executor.forward(batched).data
        slow_ref = executor.reference(batched).data
        executor._use_gemm = True
        assert fast.tobytes() == slow.tobytes()
        assert fast_ref.tobytes() == slow_ref.tobytes()


@pytest.mark.parametrize("kind", ["conv", "deconv", "linear"])
@pytest.mark.parametrize("batch", [2, 5])
class TestBatchedTelemetrySums:
    def test_batched_counters_equal_per_frame_sum(self, kind, batch):
        executor, frames = _make_executor(kind, 8, "row")
        frames = frames[:batch]

        sequential = LayerTelemetry(layer="seq")
        executor.telemetry = sequential
        for frame in frames:
            executor.forward(frame)

        batched = LayerTelemetry(layer="bat")
        executor.telemetry = batched
        executor.forward(_stack(frames))
        executor.telemetry = None

        assert batched.calls == sequential.calls == batch
        assert batched.macs == sequential.macs
        assert batched.columns_total == sequential.columns_total
        assert batched.columns_skipped == sequential.columns_skipped
        assert batched.activations_total == sequential.activations_total
        assert batched.activations_saturated \
            == sequential.activations_saturated
        assert batched.acc_min == sequential.acc_min
        assert batched.acc_max == sequential.acc_max


class TestCompaction:
    """The packed weight matrix is built once, at construction."""

    def test_compact_matrix_only_keeps_live_columns(self):
        executor, _ = _make_executor("conv", 8, "row")
        keep = executor._keep_cols
        assert not keep.all()
        assert executor._w_kept.shape[1] == keep.sum() == executor._kept
        dense = executor.weight_codes.reshape(
            executor.weight_codes.shape[0], -1)
        assert (executor._w_kept == dense[:, keep]).all()

    def test_recompact_follows_mask(self):
        executor, frames = _make_executor("conv", 8, "row")
        before = executor.forward(frames[0]).data
        executor._keep_cols = np.ones_like(executor._keep_cols)
        executor._compact()
        assert executor._kept == executor._keep_cols.size
        after = executor.forward(frames[0]).data
        # Skipping all-zero columns is exact: same bytes either way.
        assert before.tobytes() == after.tobytes()

    def test_shape_plans_are_bounded(self):
        executor, _ = _make_executor("conv", 8, "row")
        rng = np.random.default_rng(0)
        for h in range(4, 16):
            executor.forward(Tensor(
                rng.standard_normal((1, 2, h, 6)).astype(np.float32)))
        from repro.nn.quantized import _MAX_SHAPE_PLANS
        assert len(executor._plans) <= _MAX_SHAPE_PLANS
