"""CLI coverage for `repro pack-archive`, `repro archive ls/verify`,
and `repro stream --archive/--ladder` with the swap-event report."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core import ArchiveReader, pack_archive, pack_model
from repro.ir import extract_ir
from repro.models import PointPillars
from repro.pointcloud import PillarConfig

RUNGS = ("lck-16", "hck-8", "hck-4")


def _tiny_pp(seed=0):
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6),
                                   y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=seed)


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory):
    """A three-rung archive of tiny models, written through the API."""
    blobs, meta = {}, {}
    for seed, name in enumerate(RUNGS):
        model = _tiny_pp(seed)
        ir = extract_ir(model, *model.example_inputs())
        blobs[name] = pack_model(model, ir=ir)
        meta[name] = {"model": "tiny", "preset": name}
    path = tmp_path_factory.mktemp("archive") / "fleet.upak"
    path.write_bytes(pack_archive(blobs, meta))
    return path


class TestPackArchiveCLI:
    def test_pack_and_reopen(self, tmp_path, capsys):
        out = tmp_path / "float.upak"
        # The float preset packs the uncompressed model — fast enough
        # for tier-1; compressed variants are covered by the fuzz tier.
        assert main(["pack-archive", "--model", "tiny",
                     "--variants", "float", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "1 entries" in text
        reader = ArchiveReader.open(out)
        assert reader.names == ["float"]
        assert reader.entry("float").meta == {"model": "tiny",
                                              "preset": "float"}
        reader.verify()

    def test_unknown_variant_is_an_error(self, tmp_path, capsys):
        out = tmp_path / "bad.upak"
        assert main(["pack-archive", "--model", "tiny",
                     "--variants", "nope", "--out", str(out)]) == 2
        assert "unknown preset" in capsys.readouterr().err
        assert not out.exists()


class TestArchiveInspectCLI:
    def test_ls_lists_entries_in_pack_order(self, archive_path, capsys):
        assert main(["archive", "ls", str(archive_path)]) == 0
        out = capsys.readouterr().out
        positions = [out.index(name) for name in RUNGS]
        assert positions == sorted(positions)
        assert "preset=lck-16" in out
        assert "deduplicated" in out

    def test_verify_ok(self, archive_path, capsys):
        assert main(["archive", "verify", str(archive_path)]) == 0
        assert capsys.readouterr().out.startswith("OK:")

    def test_verify_flags_corruption_and_salvage(self, archive_path,
                                                 tmp_path, capsys):
        data = bytearray(archive_path.read_bytes())
        data[-20] ^= 0x01               # inside the last chunks
        damaged = tmp_path / "damaged.upak"
        damaged.write_bytes(bytes(data))
        assert main(["archive", "verify", str(damaged)]) == 1
        captured = capsys.readouterr()
        assert "CORRUPT" in captured.err
        assert "intact" in captured.out

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["archive", "ls", str(tmp_path / "nope.upak")]) == 2
        assert "cannot open archive" in capsys.readouterr().err


class TestStreamLadderCLI:
    def test_ladder_stream_writes_consistent_swap_report(
            self, archive_path, tmp_path, capsys):
        swaps = tmp_path / "swaps.json"
        code = main(["stream", "--model", "tiny", "--frames", "8",
                     "--archive", str(archive_path),
                     "--ladder", ",".join(RUNGS),
                     "--deadline-ms", "0.0001", "--miss-limit", "1",
                     "--swap-report", str(swaps)])
        assert code == 0
        out = capsys.readouterr().out
        assert "ladder from" in out
        assert "demotions" in out
        payload = json.loads(swaps.read_text())
        assert payload["ladder"] == list(RUNGS)
        assert payload["demotions"] == len(RUNGS) - 1
        # Swap events must agree with the per-frame rung attribution.
        rungs = [row["rung"] for row in payload["frame_rungs"]]
        transitions = [
            (payload["frame_rungs"][i]["frame_id"], rungs[i],
             rungs[i + 1])
            for i in range(len(rungs) - 1) if rungs[i] != rungs[i + 1]]
        events = [(e["frame_id"], e["from_rung"], e["to_rung"])
                  for e in payload["swap_events"]]
        assert events == transitions

    def test_default_ladder_is_every_entry(self, archive_path, capsys):
        code = main(["stream", "--model", "tiny", "--frames", "2",
                     "--archive", str(archive_path),
                     "--deadline-ms", "1000"])
        assert code == 0
        assert " -> ".join(RUNGS) in capsys.readouterr().out

    def test_ladder_without_archive_is_an_error(self, capsys):
        assert main(["stream", "--ladder", "a,b"]) == 2
        assert "--ladder needs --archive" in capsys.readouterr().err

    def test_archive_conflicts_with_fallback_model(self, archive_path,
                                                   capsys):
        code = main(["stream", "--archive", str(archive_path),
                     "--fallback-model", "hck"])
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_unknown_rung_is_an_error(self, archive_path, capsys):
        code = main(["stream", "--archive", str(archive_path),
                     "--ladder", "missing-rung"])
        assert code == 2
        assert "no archive entry" in capsys.readouterr().err

    def test_stream_parser_ladder_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.archive is None
        assert args.ladder is None
        assert args.promote_after == 5
        assert args.probation == 3
        assert args.swap_report is None
