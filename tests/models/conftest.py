"""Small-scale fixtures shared by model tests (kept tiny for speed)."""

import numpy as np
import pytest

from repro.camera import CameraModel
from repro.models import PointPillars, SMOKE
from repro.pointcloud import LidarConfig, SceneConfig, SceneGenerator
from repro.pointcloud.voxelize import PillarConfig, VoxelConfig

TINY_PILLARS = dict(
    pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8),
                               pillar_size=0.8, max_pillars=512),
    pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
    upsample_channels=8,
)

TINY_VOXELS = dict(
    voxel_config=VoxelConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
    middle_channels=8, stage_channels=(8, 16, 32), upsample_channels=8,
)

TINY_CAMERA = CameraModel.kitti_like(width=64, height=24)

TINY_SMOKE = dict(camera=TINY_CAMERA, base_channels=8, head_channels=8)


@pytest.fixture(scope="session")
def tiny_scene():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=12, azimuth_steps=90))
    generator = SceneGenerator(cfg, seed=3)
    scene = generator.generate(0, with_image=False)
    from repro.camera import render_scene
    scene.image = render_scene(TINY_CAMERA, scene.boxes,
                               rng=np.random.default_rng(0))
    scene.calib = {"K": TINY_CAMERA.intrinsics()}
    return scene


@pytest.fixture(scope="session")
def tiny_pointpillars():
    return PointPillars(seed=0, **TINY_PILLARS)


@pytest.fixture(scope="session")
def tiny_smoke():
    return SMOKE(seed=0, **TINY_SMOKE)
