"""Tests for the PointPillars detector."""

import numpy as np
import pytest

from repro import nn
from repro.models import PointPillars
from repro.models.pointpillars import PillarFeatureNet, SSDHead
from repro.nn import Tensor

from .conftest import TINY_PILLARS


class TestPillarFeatureNet:
    def test_output_shape(self):
        pfn = PillarFeatureNet(out_channels=16)
        features = Tensor(np.random.default_rng(0)
                          .standard_normal((10, 8, 9)).astype(np.float32))
        mask = Tensor(np.ones((10, 8), dtype=np.float32))
        out = pfn(features, mask)
        assert out.shape == (10, 16)

    def test_masked_points_ignored(self):
        pfn = PillarFeatureNet(out_channels=4)
        pfn.eval()
        rng = np.random.default_rng(1)
        features = rng.standard_normal((3, 6, 9)).astype(np.float32)
        mask = np.ones((3, 6), dtype=np.float32)
        mask[:, 3:] = 0.0
        out_masked = pfn(Tensor(features), Tensor(mask)).data
        # Perturbing masked slots must not change the output.
        perturbed = features.copy()
        perturbed[:, 3:] += 100.0
        out_perturbed = pfn(Tensor(perturbed), Tensor(mask)).data
        np.testing.assert_allclose(out_masked, out_perturbed, atol=1e-5)

    def test_uses_1x1_convolution(self):
        pfn = PillarFeatureNet(out_channels=4)
        assert pfn.conv.kernel_size == 1   # Algorithm 5's target layer


class TestSSDHeadFlattening:
    def test_flatten_matches_anchor_order(self):
        """The flattened head output must align with AnchorGrid ordering."""
        head = SSDHead(in_channels=4, anchors_per_cell=6)
        h, w = 3, 4
        rng = np.random.default_rng(0)
        features = Tensor(rng.standard_normal((1, 4, h, w))
                          .astype(np.float32))
        outputs = head(features)
        cls_flat, reg_flat = head.flatten_outputs(outputs)
        assert cls_flat.shape == (h * w * 6,)
        assert reg_flat.shape == (h * w * 6, 7)
        # Anchor (row=1, col=2, a=3) sits at index ((1*w)+2)*6 + 3.
        idx = (1 * w + 2) * 6 + 3
        assert cls_flat.data[idx] == pytest.approx(
            outputs["cls"].data[0, 3, 1, 2])
        np.testing.assert_allclose(
            reg_flat.data[idx],
            outputs["reg"].data[0, 3 * 7:(3 + 1) * 7, 1, 2])


class TestPointPillarsModel:
    def test_forward_shapes(self, tiny_pointpillars, tiny_scene):
        out = tiny_pointpillars.forward(
            *tiny_pointpillars.preprocess(tiny_scene))
        ny, nx = tiny_pointpillars.pillar_config.grid_shape
        assert out["cls"].shape == (1, 6, ny // 2, nx // 2)
        assert out["reg"].shape == (1, 42, ny // 2, nx // 2)

    def test_example_inputs_run(self, tiny_pointpillars):
        out = tiny_pointpillars.forward(*tiny_pointpillars.example_inputs())
        assert np.isfinite(out["cls"].data).all()

    def test_loss_finite_and_differentiable(self, tiny_scene):
        model = PointPillars(seed=1, **TINY_PILLARS)
        outputs = model.forward(*model.preprocess(tiny_scene))
        loss = model.loss(outputs, tiny_scene)
        assert np.isfinite(loss.item())
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert len(grads) > 0
        assert all(np.isfinite(g).all() for g in grads)

    def test_predict_returns_result(self, tiny_pointpillars, tiny_scene):
        result = tiny_pointpillars.predict(tiny_scene)
        assert result.frame_id == tiny_scene.frame_id
        for box in result.boxes:
            assert box.label in ("Car", "Pedestrian", "Cyclist")
            assert 0.0 <= box.score <= 1.0

    def test_train_step_reduces_loss(self, tiny_scene):
        model = PointPillars(seed=2, **TINY_PILLARS)
        opt = nn.optim.Adam(model.parameters(), lr=5e-3)
        first = model.train_step(opt, tiny_scene)
        for _ in range(8):
            last = model.train_step(opt, tiny_scene)
        assert last < first

    def test_anchor_grid_matches_head_output(self, tiny_pointpillars):
        ny, nx = tiny_pointpillars.pillar_config.grid_shape
        assert len(tiny_pointpillars.anchor_grid) == (ny // 2) * (nx // 2) * 6
