"""Tests for the MonoFlex-lite monocular detector."""

import numpy as np
import pytest

from repro import nn
from repro.models import MonoFlex

from .conftest import TINY_CAMERA

TINY_MONOFLEX = dict(camera=TINY_CAMERA, base_channels=8, head_channels=8)


class TestMonoFlex:
    def test_forward_has_flex_branch(self, tiny_scene):
        model = MonoFlex(seed=0, **TINY_MONOFLEX)
        out = model.forward(*model.preprocess(tiny_scene))
        h, w = TINY_CAMERA.height // 4, TINY_CAMERA.width // 4
        assert out["flex"].shape == (1, 3, h, w)

    def test_loss_includes_flex_supervision(self, tiny_scene):
        model = MonoFlex(seed=1, **TINY_MONOFLEX)
        outputs = model.forward(*model.preprocess(tiny_scene))
        loss = model.loss(outputs, tiny_scene)
        assert np.isfinite(loss.item())
        loss.backward()
        flex_conv = model.depth_branch[1]
        assert flex_conv.weight.grad is not None
        assert np.isfinite(flex_conv.weight.grad).all()

    def test_predict_returns_valid_boxes(self, tiny_scene):
        model = MonoFlex(seed=0, **TINY_MONOFLEX)
        result = model.predict(tiny_scene)
        for box in result.boxes:
            assert 1.0 <= box.x <= 100.0
            assert box.dz > 0

    def test_depth_ensemble_fuses_branches(self, tiny_scene):
        """With extreme geometric confidence, depth follows geometry."""
        model = MonoFlex(seed=0, **TINY_MONOFLEX)
        model.eval()
        with nn.no_grad():
            outputs = model.forward(*model.preprocess(tiny_scene))
        heat = 1.0 / (1.0 + np.exp(-outputs["heatmap"].data[0]))
        reg = outputs["reg"].data[0]
        flex = outputs["flex"].data[0].copy()

        flex[1, :, :] = 4.0     # direct depth: huge variance
        flex[2, :, :] = -4.0    # geometric depth: tiny variance
        geo_boxes = model._decode(heat, reg, flex)

        flex[1, :, :] = -4.0    # now trust the direct branch instead
        flex[2, :, :] = 4.0
        direct_boxes = model._decode(heat, reg, flex)

        if not geo_boxes:
            pytest.skip("no detections on the tiny random model")
        # Same count, generally different depths.
        assert len(geo_boxes) == len(direct_boxes)

    def test_train_step_reduces_loss(self, tiny_scene):
        model = MonoFlex(seed=2, **TINY_MONOFLEX)
        opt = nn.optim.Adam(model.parameters(), lr=3e-3)
        first = model.train_step(opt, tiny_scene)
        for _ in range(6):
            last = model.train_step(opt, tiny_scene)
        assert last < first

    def test_upaq_compresses_monoflex(self, tiny_scene):
        from repro.core import UPAQCompressor, hck_config
        model = MonoFlex(seed=0, **TINY_MONOFLEX)
        report = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        assert report.compression_ratio > 2.0
        result = report.model.predict(tiny_scene)
        assert result.frame_id == tiny_scene.frame_id

    def test_registered(self):
        from repro.models import available_models
        assert "monoflex" in available_models()

    def test_larger_than_smoke_head(self):
        from repro.models import SMOKE
        smoke = SMOKE(seed=0, **{**TINY_MONOFLEX})
        flex = MonoFlex(seed=0, **TINY_MONOFLEX)
        assert flex.num_parameters() > smoke.num_parameters()
