"""Tests for the SMOKE monocular detector."""

import numpy as np
import pytest

from repro import nn
from repro.models import SMOKE
from repro.models.smoke.model import (_DEPTH_REF, _gaussian_radius,
                                      _splat_gaussian)

from .conftest import TINY_SMOKE


class TestGaussianTargets:
    def test_radius_positive_and_monotonic(self):
        small = _gaussian_radius(2, 2)
        large = _gaussian_radius(10, 10)
        assert small >= 1.0
        assert large > small

    def test_splat_peak_at_center(self):
        heatmap = np.zeros((9, 9), dtype=np.float32)
        _splat_gaussian(heatmap, 4, 4, radius=2)
        assert heatmap[4, 4] == pytest.approx(1.0)
        assert heatmap[4, 5] < 1.0
        assert heatmap[0, 0] == 0.0

    def test_splat_max_not_overwritten(self):
        heatmap = np.zeros((5, 5), dtype=np.float32)
        _splat_gaussian(heatmap, 2, 2, radius=2)
        _splat_gaussian(heatmap, 2, 3, radius=1)
        assert heatmap[2, 2] == pytest.approx(1.0)


class TestSmokeModel:
    def test_forward_shapes(self, tiny_smoke, tiny_scene):
        out = tiny_smoke.forward(*tiny_smoke.preprocess(tiny_scene))
        h, w = tiny_smoke.camera.height // 4, tiny_smoke.camera.width // 4
        assert out["heatmap"].shape == (1, 3, h, w)
        assert out["reg"].shape == (1, 8, h, w)

    def test_requires_image(self, tiny_smoke, tiny_scene):
        from repro.pointcloud import Scene
        bare = Scene(points=tiny_scene.points, boxes=tiny_scene.boxes,
                     image=None)
        with pytest.raises(ValueError, match="image"):
            tiny_smoke.preprocess(bare)

    def test_keypoint_targets_align_with_projection(self, tiny_smoke,
                                                    tiny_scene):
        heat, reg, mask = tiny_smoke._keypoint_targets(tiny_scene)
        assert heat.max() <= 1.0
        # Every regression cell flagged must carry a valid depth code.
        rows, cols = np.where(mask > 0)
        for r, c in zip(rows, cols):
            depth = _DEPTH_REF * np.exp(reg[2, r, c])
            assert 1.0 < depth < 80.0
            sin_yaw, cos_yaw = reg[6, r, c], reg[7, r, c]
            assert sin_yaw ** 2 + cos_yaw ** 2 == pytest.approx(1.0,
                                                                abs=1e-4)

    def test_loss_finite_and_differentiable(self, tiny_scene):
        model = SMOKE(seed=1, **TINY_SMOKE)
        outputs = model.forward(*model.preprocess(tiny_scene))
        loss = model.loss(outputs, tiny_scene)
        assert np.isfinite(loss.item())
        loss.backward()
        grads = [p.grad for p in model.parameters() if p.grad is not None]
        assert all(np.isfinite(g).all() for g in grads)

    def test_predict_boxes_valid(self, tiny_smoke, tiny_scene):
        result = tiny_smoke.predict(tiny_scene)
        for box in result.boxes:
            assert box.dx > 0 and box.dy > 0 and box.dz > 0
            assert box.x > 0          # in front of the camera
            assert -np.pi <= box.yaw <= np.pi

    def test_decode_inverts_targets(self, tiny_smoke, tiny_scene):
        """Feeding perfect targets through decode recovers the objects."""
        heat, reg, mask = tiny_smoke._keypoint_targets(tiny_scene)
        # Sharpen the heatmap so only the true peaks survive.
        peaks = (heat >= 1.0).astype(np.float32)
        boxes = tiny_smoke._decode(peaks * 0.99, reg)
        visible_gt = [b for b in tiny_scene.boxes
                      if mask.sum() > 0]
        if int(mask.sum()) == 0:
            pytest.skip("no object projects into the tiny camera")
        assert len(boxes) == int(mask.sum())
        for pred in boxes:
            best = min(np.hypot(pred.x - gt.x, pred.y - gt.y)
                       for gt in visible_gt)
            assert best < 2.5   # stride-4 grid + tiny camera tolerance

    def test_train_step_reduces_loss(self, tiny_scene):
        model = SMOKE(seed=2, **TINY_SMOKE)
        opt = nn.optim.Adam(model.parameters(), lr=3e-3)
        first = model.train_step(opt, tiny_scene)
        for _ in range(8):
            last = model.train_step(opt, tiny_scene)
        assert last < first


class TestModelRegistry:
    def test_build_all(self):
        from repro.models import available_models, build_model
        assert set(available_models()) >= {"focalsconv", "monoflex",
                                           "pointpillars", "second",
                                           "smoke", "vsc"}

    def test_build_fuzzy_names(self):
        from repro.models import build_model, FocalsConv
        assert isinstance(build_model("Focals Conv", **{}), FocalsConv)

    def test_unknown_model_raises(self):
        from repro.models import build_model
        with pytest.raises(KeyError):
            build_model("yolo")


class TestTable1Models:
    def test_param_ordering_matches_paper(self):
        """Table 1: PointPillars < SECOND < FocalsConv < SMOKE < VSC."""
        from repro.models import build_model
        params = {name: build_model(name).num_parameters()
                  for name in ("pointpillars", "second", "focalsconv",
                               "smoke", "vsc")}
        assert params["pointpillars"] < params["second"]
        assert params["second"] < params["focalsconv"]
        assert params["focalsconv"] < params["smoke"]
        assert params["smoke"] < params["vsc"]

    def test_second_forward(self, tiny_scene):
        from repro.models import SECOND
        from .conftest import TINY_VOXELS
        model = SECOND(seed=0, **TINY_VOXELS)
        out = model.forward(*model.preprocess(tiny_scene))
        assert np.isfinite(out["cls"].data).all()

    def test_focalsconv_gate_bounded(self, tiny_scene):
        from repro.models import FocalsConv
        from .conftest import TINY_VOXELS
        model = FocalsConv(seed=0, **TINY_VOXELS)
        features = model.middle(model.preprocess(tiny_scene)[0])
        gate = model.focal_gate(features)
        assert gate.data.min() >= 0.0
        assert gate.data.max() <= 1.0

    def test_vsc_forward(self, tiny_scene):
        from repro.models import VSC
        from .conftest import TINY_VOXELS
        model = VSC(seed=0, **TINY_VOXELS)
        out = model.forward(*model.preprocess(tiny_scene))
        assert np.isfinite(out["cls"].data).all()

    def test_second_predict_and_loss(self, tiny_scene):
        from repro.models import SECOND
        from .conftest import TINY_VOXELS
        model = SECOND(seed=1, **TINY_VOXELS)
        outputs = model.forward(*model.preprocess(tiny_scene))
        loss = model.loss(outputs, tiny_scene)
        assert np.isfinite(loss.item())
        loss.backward()
        result = model.predict(tiny_scene)
        assert result.frame_id == tiny_scene.frame_id
        for box in result.boxes:
            assert box.label in ("Car", "Pedestrian", "Cyclist")

    def test_second_example_inputs_trace(self, tiny_scene):
        from repro.core import preprocess_model
        from repro.models import SECOND
        from .conftest import TINY_VOXELS
        model = SECOND(seed=0, **TINY_VOXELS)
        groups = preprocess_model(model, *model.example_inputs())
        assert groups.num_layers >= 10   # middle + backbone + head layers
