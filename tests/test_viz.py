"""Tests for PPM export and BEV rendering."""

import numpy as np
import pytest

from repro.pointcloud import Box3D, LidarConfig, SceneConfig, SceneGenerator
from repro.viz import (bev_density_map, draw_boxes_bev, image_to_ppm,
                       render_fig6_image, write_ppm)


@pytest.fixture(scope="module")
def scene():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    return SceneGenerator(cfg, seed=5).generate(0, with_image=True)


class TestPPM:
    def test_roundtrippable_header(self, tmp_path):
        image = np.random.default_rng(0).random((3, 8, 12)) \
            .astype(np.float32)
        path = str(tmp_path / "img.ppm")
        write_ppm(image, path)
        with open(path, "rb") as handle:
            header = handle.readline()
            dims = handle.readline().split()
            maxval = handle.readline()
            payload = handle.read()
        assert header == b"P6\n"
        assert dims == [b"12", b"8"]
        assert maxval == b"255\n"
        assert len(payload) == 8 * 12 * 3

    def test_hwc_layout_accepted(self, tmp_path):
        image = np.zeros((8, 12, 3), dtype=np.float32)
        write_ppm(image, str(tmp_path / "img.ppm"))

    def test_bad_shape_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(np.zeros((8, 12)), str(tmp_path / "img.ppm"))

    def test_values_clipped(self, tmp_path):
        image = np.full((3, 2, 2), 5.0, dtype=np.float32)
        path = str(tmp_path / "img.ppm")
        write_ppm(image, path)
        with open(path, "rb") as handle:
            payload = handle.read().split(b"255\n", 1)[1]
        assert set(payload) == {255}

    def test_camera_upscale(self, scene, tmp_path):
        path = str(tmp_path / "cam.ppm")
        image_to_ppm(scene.image, path, upscale=2)
        with open(path, "rb") as handle:
            handle.readline()
            dims = handle.readline().split()
        assert int(dims[0]) == scene.image.shape[2] * 2


class TestBEV:
    def test_density_map_range_and_mass(self, scene):
        density = bev_density_map(scene.points, x_range=(0, 25.6),
                                  y_range=(-12.8, 12.8))
        assert density.min() >= 0.0
        assert density.max() == pytest.approx(1.0)
        assert density.sum() > 10

    def test_density_localized_at_object(self):
        points = np.array([[10.0, 0.0, 0.5, 0.1]] * 50, dtype=np.float32)
        density = bev_density_map(points, x_range=(0, 20),
                                  y_range=(-10, 10), resolution=1.0)
        row, col = np.unravel_index(density.argmax(), density.shape)
        assert col == 10    # x = 10 m
        assert row == 10    # y = 0 m

    def test_draw_boxes_marks_canvas(self):
        canvas = np.zeros((64, 64, 3), dtype=np.float32)
        box = Box3D(25, 0, 1, 4, 2, 2, 0.5)
        draw_boxes_bev(canvas, [box], (0, 1, 0), x_range=(0, 51.2),
                       y_range=(-25.6, 25.6))
        assert (canvas[:, :, 1] > 0).sum() > 10
        assert canvas[:, :, 0].sum() == 0

    def test_render_fig6_image(self, scene, tmp_path):
        path = str(tmp_path / "fig6.ppm")
        pred = [Box3D(12, 0, 1, 4, 2, 2, 0.1, score=0.8)]
        canvas = render_fig6_image(scene, pred, path,
                                   x_range=(0, 25.6),
                                   y_range=(-12.8, 12.8))
        assert canvas.shape[2] == 3
        import os
        assert os.path.exists(path)
        # GT drawn green, predictions red.
        assert (canvas[:, :, 1] > canvas[:, :, 0]).any()
        assert (canvas[:, :, 0] > canvas[:, :, 1]).any()
