"""Tests for difficulty-stratified evaluation and PR curves."""

import numpy as np
import pytest

from repro.detection import (DetectionResult, evaluate_by_difficulty,
                             precision_recall_curve)
from repro.pointcloud import Box3D


def _car(x, y, difficulty=0, score=1.0):
    return Box3D(x, y, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                 score=score, difficulty=difficulty)


class TestEvaluateByDifficulty:
    def test_buckets_are_cumulative(self):
        gt = [[_car(10, 0, difficulty=0), _car(20, 5, difficulty=2)]]
        # Only the easy object is detected.
        pred = [DetectionResult([_car(10, 0, score=0.9)])]
        result = evaluate_by_difficulty(pred, gt)
        # Easy bucket: 1/1 found → AP 100; hard bucket: 1/2 → lower.
        assert result["easy"]["Car"] == pytest.approx(100.0)
        assert result["hard"]["Car"] < result["easy"]["Car"]

    def test_all_buckets_present(self):
        result = evaluate_by_difficulty([DetectionResult([])], [[]])
        assert set(result) == {"easy", "moderate", "hard"}

    def test_hard_matches_plain_map(self):
        from repro.detection import evaluate_map
        gt = [[_car(10, 0, difficulty=1), _car(25, -4, difficulty=2)]]
        pred = [DetectionResult([_car(10, 0, score=0.8)])]
        stratified = evaluate_by_difficulty(pred, gt)
        plain = evaluate_map(pred, gt)
        assert stratified["hard"]["mAP"] == pytest.approx(plain["mAP"])


class TestPrecisionRecallCurve:
    def test_perfect_detector(self):
        gt = [[_car(10, 0), _car(25, 4)]]
        pred = [DetectionResult([_car(10, 0, score=0.9),
                                 _car(25, 4, score=0.8)])]
        recall, precision = precision_recall_curve(pred, gt, "Car")
        assert recall[-1] == pytest.approx(1.0)
        np.testing.assert_allclose(precision, np.ones(2))

    def test_false_positive_drops_precision(self):
        gt = [[_car(10, 0)]]
        pred = [DetectionResult([_car(10, 0, score=0.9),
                                 _car(40, 8, score=0.5)])]
        recall, precision = precision_recall_curve(pred, gt, "Car")
        assert precision[0] == pytest.approx(1.0)
        assert precision[1] == pytest.approx(0.5)
        assert recall[1] == pytest.approx(1.0)

    def test_recall_monotone(self):
        rng = np.random.default_rng(0)
        gt = [[_car(10 + 6 * i, 0) for i in range(4)]]
        boxes = [_car(10 + 6 * i, rng.uniform(-1, 1),
                      score=rng.uniform(0.1, 0.9)) for i in range(4)]
        pred = [DetectionResult(boxes)]
        recall, _ = precision_recall_curve(pred, gt, "Car")
        assert (np.diff(recall) >= -1e-9).all()

    def test_empty_inputs(self):
        recall, precision = precision_recall_curve(
            [DetectionResult([])], [[]], "Car")
        assert len(recall) == 0
        assert len(precision) == 0
