"""Property-based invariants of NMS and AP evaluation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (DetectionResult, average_precision, nms_bev)
from repro.pointcloud import Box3D


def _random_boxes(rng, count):
    boxes = np.zeros((count, 7), dtype=np.float32)
    boxes[:, 0] = rng.uniform(0, 50, count)
    boxes[:, 1] = rng.uniform(-20, 20, count)
    boxes[:, 2] = 1.0
    boxes[:, 3] = rng.uniform(1, 5, count)
    boxes[:, 4] = rng.uniform(1, 3, count)
    boxes[:, 5] = 1.6
    boxes[:, 6] = rng.uniform(-np.pi, np.pi, count)
    return boxes


class TestNMSProperties:
    @given(st.integers(0, 9999), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_idempotent(self, seed, count):
        """Running NMS on its own output changes nothing."""
        rng = np.random.default_rng(seed)
        boxes = _random_boxes(rng, count)
        scores = rng.uniform(0.1, 1.0, count)
        keep = nms_bev(boxes, scores, iou_threshold=0.3)
        keep_again = nms_bev(boxes[keep], scores[keep], iou_threshold=0.3)
        assert len(keep_again) == len(keep)

    @given(st.integers(0, 9999), st.integers(2, 15))
    @settings(max_examples=30, deadline=None)
    def test_highest_score_always_kept(self, seed, count):
        rng = np.random.default_rng(seed)
        boxes = _random_boxes(rng, count)
        scores = rng.uniform(0.1, 1.0, count)
        keep = nms_bev(boxes, scores, iou_threshold=0.3)
        assert int(scores.argmax()) in set(keep.tolist())

    @given(st.integers(0, 9999), st.integers(1, 15))
    @settings(max_examples=30, deadline=None)
    def test_input_order_invariance(self, seed, count):
        """Shuffling the input boxes never changes the surviving set.

        NMS is defined by score order, not presentation order — the
        kept (box, score) pairs must be permutation-invariant.
        """
        rng = np.random.default_rng(seed)
        boxes = _random_boxes(rng, count)
        # Distinct scores so the score ranking is unambiguous.
        scores = np.linspace(0.95, 0.1, count)
        rng.shuffle(scores)
        keep = nms_bev(boxes, scores, iou_threshold=0.3)
        kept = {(round(float(scores[i]), 9), boxes[i].tobytes())
                for i in keep}
        perm = rng.permutation(count)
        keep_perm = nms_bev(boxes[perm], scores[perm], iou_threshold=0.3)
        kept_perm = {(round(float(scores[perm][i]), 9),
                      boxes[perm][i].tobytes()) for i in keep_perm}
        assert kept == kept_perm

    @given(st.integers(0, 9999), st.integers(1, 15))
    @settings(max_examples=30, deadline=None)
    def test_survivors_mutually_below_threshold(self, seed, count):
        from repro.pointcloud import iou_bev
        rng = np.random.default_rng(seed)
        boxes = _random_boxes(rng, count)
        scores = rng.uniform(0.1, 1.0, count)
        keep = nms_bev(boxes, scores, iou_threshold=0.3)
        for i in range(len(keep)):
            for j in range(i + 1, len(keep)):
                assert iou_bev(boxes[keep[i]], boxes[keep[j]]) <= 0.3 + 1e-6


class TestAPProperties:
    @given(st.integers(0, 9999), st.integers(1, 6), st.integers(0, 6))
    @settings(max_examples=30, deadline=None)
    def test_ap_bounded(self, seed, n_gt, n_pred):
        rng = np.random.default_rng(seed)
        gt = [Box3D(float(rng.uniform(5, 45)), float(rng.uniform(-15, 15)),
                    0.78, 3.9, 1.6, 1.56, 0.0, label="Car")
              for _ in range(n_gt)]
        pred = [Box3D(float(rng.uniform(5, 45)), float(rng.uniform(-15, 15)),
                      0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                      score=float(rng.uniform(0.05, 1.0)))
                for _ in range(n_pred)]
        ap = average_precision([DetectionResult(pred)], [gt], "Car")
        assert 0.0 <= ap <= 100.0

    @given(st.integers(0, 9999), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_adding_matching_prediction_never_hurts(self, seed, n_gt):
        """Appending a correct lowest-ranked detection cannot lower AP."""
        rng = np.random.default_rng(seed)
        gt = [Box3D(5.0 + 8.0 * i, 0.0, 0.78, 3.9, 1.6, 1.56, 0.0,
                    label="Car") for i in range(n_gt)]
        detected = rng.integers(0, n_gt)
        pred = [Box3D(gt[i].x, gt[i].y, 0.78, 3.9, 1.6, 1.56, 0.0,
                      label="Car", score=0.9 - 0.01 * i)
                for i in range(detected)]
        base_ap = average_precision([DetectionResult(list(pred))], [gt],
                                    "Car")
        extra = Box3D(gt[detected].x, gt[detected].y, 0.78, 3.9, 1.6, 1.56,
                      0.0, label="Car", score=0.01)
        better_ap = average_precision(
            [DetectionResult(pred + [extra])], [gt], "Car")
        assert better_ap >= base_ap - 1e-9

    @given(st.integers(0, 9999), st.integers(1, 4), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_removing_false_positive_never_hurts(self, seed, n_gt, n_fp):
        """Dropping a detection that matches nothing cannot lower AP."""
        rng = np.random.default_rng(seed)
        gt = [Box3D(5.0 + 8.0 * i, 0.0, 0.78, 3.9, 1.6, 1.56, 0.0,
                    label="Car") for i in range(n_gt)]
        hits = [Box3D(g.x, g.y, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                      score=float(rng.uniform(0.5, 1.0))) for g in gt]
        # False positives far outside every gt footprint.
        fps = [Box3D(100.0 + 10.0 * i, 30.0, 0.78, 3.9, 1.6, 1.56, 0.0,
                     label="Car", score=float(rng.uniform(0.05, 1.0)))
               for i in range(n_fp)]
        with_fp = average_precision([DetectionResult(hits + fps)], [gt],
                                    "Car")
        without_one = average_precision(
            [DetectionResult(hits + fps[1:])], [gt], "Car")
        assert without_one >= with_fp - 1e-9

    @given(st.integers(0, 9999), st.integers(1, 6), st.integers(0, 6))
    @settings(max_examples=25, deadline=None)
    def test_ap_never_nan_when_gt_present(self, seed, n_gt, n_pred):
        import math
        rng = np.random.default_rng(seed)
        gt = [Box3D(float(rng.uniform(5, 45)), float(rng.uniform(-15, 15)),
                    0.78, 3.9, 1.6, 1.56, 0.0, label="Car")
              for _ in range(n_gt)]
        pred = [Box3D(float(rng.uniform(5, 45)), float(rng.uniform(-15, 15)),
                      0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                      score=float(rng.uniform(0.05, 1.0)))
                for _ in range(n_pred)]
        ap = average_precision([DetectionResult(pred)], [gt], "Car")
        assert not math.isnan(ap)
