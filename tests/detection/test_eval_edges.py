"""Boundary behavior of the AP/mAP evaluators on empty inputs.

The conventions under test (see ``repro.detection.evaluation``):

* no ground truth for a class → AP is NaN (undefined, not zero),
  mirroring ``StreamReport``'s NaN-on-empty latency statistics;
* ground truth present but zero predictions → AP is 0.0 (a real miss);
* ``mAP`` averages only classes with ground truth and is NaN only when
  no class has any;
* prediction/ground-truth lists of different lengths are a caller bug
  and raise ``ValueError`` instead of silently zipping short.
"""

import math

import pytest

from repro.detection import (DetectionResult, average_precision,
                             evaluate_by_difficulty, evaluate_map,
                             precision_recall_curve)
from repro.pointcloud import Box3D


def _car(x=10.0, score=None, difficulty=0):
    kwargs = {"label": "Car", "difficulty": difficulty}
    if score is not None:
        kwargs["score"] = score
    return Box3D(x, 0, 0.78, 3.9, 1.6, 1.56, 0.0, **kwargs)


class TestEmptyInputs:
    def test_no_gt_no_predictions_is_nan(self):
        ap = average_precision([DetectionResult([])], [[]], "Car")
        assert math.isnan(ap)

    def test_no_gt_with_predictions_is_nan(self):
        # False positives against an empty class: still undefined —
        # recall has no denominator.
        ap = average_precision([DetectionResult([_car(score=0.9)])],
                               [[]], "Car")
        assert math.isnan(ap)

    def test_gt_without_predictions_is_zero(self):
        ap = average_precision([DetectionResult([])], [[_car()]], "Car")
        assert ap == 0.0

    def test_zero_frames(self):
        assert math.isnan(average_precision([], [], "Car"))

    def test_map_skips_absent_classes(self):
        gt = [[_car()]]
        pred = [DetectionResult([_car(score=0.9)])]
        result = evaluate_map(pred, gt)
        assert math.isnan(result["Pedestrian"])
        assert math.isnan(result["Cyclist"])
        assert result["mAP"] == pytest.approx(result["Car"])

    def test_map_nan_only_when_no_class_has_gt(self):
        result = evaluate_map([DetectionResult([])], [[]])
        assert math.isnan(result["mAP"])
        assert all(math.isnan(result[c])
                   for c in ("Car", "Pedestrian", "Cyclist"))

    def test_all_empty_prediction_stream_scores_zero(self):
        # The "model never fires" regression: GT exists on every frame,
        # predictions are all empty → mAP must be 0.0, not NaN.
        gt = [[_car(10.0)], [_car(14.0)]]
        pred = [DetectionResult([]), DetectionResult([])]
        result = evaluate_map(pred, gt)
        assert result["Car"] == 0.0
        assert result["mAP"] == 0.0

    def test_difficulty_stratification_on_empty_tiers(self):
        # Only a hard object: easy/moderate tiers have no GT → NaN mAP,
        # the cumulative hard tier sees it.
        gt = [[_car(40.0, difficulty=2)]]
        pred = [DetectionResult([])]
        tiers = evaluate_by_difficulty(pred, gt)
        assert math.isnan(tiers["easy"]["mAP"])
        assert math.isnan(tiers["moderate"]["mAP"])
        assert tiers["hard"]["Car"] == 0.0


class TestAlignment:
    def test_average_precision_rejects_mismatch(self):
        with pytest.raises(ValueError, match="predictions"):
            average_precision([DetectionResult([])], [[], []], "Car")

    def test_evaluate_map_rejects_mismatch(self):
        with pytest.raises(ValueError, match="ground-truth"):
            evaluate_map([DetectionResult([])], [])

    def test_pr_curve_rejects_mismatch(self):
        with pytest.raises(ValueError):
            precision_recall_curve([], [[_car()]], "Car")


class TestPrecisionRecallEdges:
    def test_empty_everything(self):
        recall, precision = precision_recall_curve([DetectionResult([])],
                                                   [[]], "Car")
        assert len(recall) == 0 and len(precision) == 0

    def test_single_perfect_detection(self):
        gt = [[_car()]]
        pred = [DetectionResult([_car(score=0.9)])]
        recall, precision = precision_recall_curve(pred, gt, "Car")
        assert recall[-1] == pytest.approx(1.0)
        assert precision[-1] == pytest.approx(1.0)
