"""Tests for anchors, target assignment, NMS and AP evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (AnchorConfig, AnchorGrid, DetectionResult,
                             EvalConfig, assign_targets, average_precision,
                             decode_boxes, encode_boxes, evaluate_map,
                             nms_2d, nms_bev)
from repro.pointcloud import Box3D


@pytest.fixture
def grid():
    return AnchorGrid(AnchorConfig(), x_range=(0, 16), y_range=(-8, 8),
                      feature_shape=(4, 4))


class TestAnchorGrid:
    def test_count(self, grid):
        # 4x4 cells * 3 classes * 2 rotations
        assert len(grid) == 4 * 4 * 6

    def test_centers_inside_extent(self, grid):
        assert grid.boxes[:, 0].min() >= 0
        assert grid.boxes[:, 0].max() <= 16
        assert grid.boxes[:, 1].min() >= -8
        assert grid.boxes[:, 1].max() <= 8

    def test_labels_cycle(self, grid):
        assert grid.labels[0] == "Car"
        assert grid.labels[1] == "Car"
        assert grid.labels[2] == "Pedestrian"

    def test_rotations_alternate(self, grid):
        assert grid.boxes[0, 6] == 0.0
        assert grid.boxes[1, 6] == pytest.approx(np.pi / 2)


class TestBoxCoding:
    def test_roundtrip(self, grid):
        rng = np.random.default_rng(0)
        anchors = grid.boxes[:10]
        gt = anchors.copy()
        gt[:, :2] += rng.normal(0, 1.0, (10, 2))
        gt[:, 3:6] *= rng.uniform(0.8, 1.2, (10, 3))
        gt[:, 6] += rng.normal(0, 0.3, 10)
        decoded = decode_boxes(encode_boxes(gt, anchors), anchors)
        np.testing.assert_allclose(decoded, gt, rtol=1e-4, atol=1e-4)

    def test_zero_residual_for_perfect_anchor(self, grid):
        anchors = grid.boxes[:5]
        encoded = encode_boxes(anchors.copy(), anchors)
        np.testing.assert_allclose(encoded, np.zeros_like(encoded),
                                   atol=1e-6)

    @given(st.floats(-2, 2), st.floats(-2, 2), st.floats(0.7, 1.4))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, ox, oy, scale):
        anchor = np.array([[8.0, 0.0, 0.78, 3.9, 1.6, 1.56, 0.0]],
                          dtype=np.float32)
        gt = anchor.copy()
        gt[0, 0] += ox
        gt[0, 1] += oy
        gt[0, 3:6] *= scale
        decoded = decode_boxes(encode_boxes(gt, anchor), anchor)
        np.testing.assert_allclose(decoded, gt, rtol=1e-3, atol=1e-3)


class TestAssignTargets:
    def test_no_gt_all_negative(self, grid):
        targets = assign_targets(grid, [])
        assert targets.num_positive == 0
        assert (targets.cls_target == 0).all()

    def test_every_gt_gets_an_anchor(self, grid):
        gt = [Box3D(6, -2, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car"),
              Box3D(12, 4, 0.87, 0.8, 0.6, 1.73, 0.0, label="Pedestrian")]
        targets = assign_targets(grid, gt)
        assert targets.num_positive >= 2
        matched_gts = set(targets.matched_gt[targets.matched_gt >= 0])
        assert matched_gts == {0, 1}

    def test_class_mismatch_never_matches(self, grid):
        gt = [Box3D(6, -2, 0.87, 0.8, 0.6, 1.73, 0.0, label="Pedestrian")]
        targets = assign_targets(grid, gt)
        positive_idx = np.where(targets.cls_target == 1)[0]
        assert all(grid.labels[i] == "Pedestrian" for i in positive_idx)

    def test_regression_targets_decodable(self, grid):
        gt = [Box3D(6.3, -2.2, 0.78, 3.9, 1.6, 1.56, 0.1, label="Car")]
        targets = assign_targets(grid, gt)
        pos = np.where(targets.cls_target == 1)[0]
        decoded = decode_boxes(targets.reg_target[pos], grid.boxes[pos])
        np.testing.assert_allclose(decoded[:, 0], 6.3, atol=1e-3)
        np.testing.assert_allclose(decoded[:, 6], 0.1, atol=1e-3)


class TestNMS:
    def test_bev_keeps_best_of_duplicates(self):
        boxes = np.array([[5, 0, 1, 4, 2, 2, 0.0],
                          [5.1, 0, 1, 4, 2, 2, 0.0],
                          [20, 5, 1, 4, 2, 2, 0.0]], dtype=np.float32)
        scores = np.array([0.9, 0.8, 0.7])
        keep = nms_bev(boxes, scores, iou_threshold=0.3)
        assert list(keep) == [0, 2]

    def test_bev_respects_max_keep(self):
        boxes = np.array([[i * 10.0, 0, 1, 4, 2, 2, 0.0] for i in range(5)],
                         dtype=np.float32)
        scores = np.linspace(1.0, 0.5, 5)
        keep = nms_bev(boxes, scores, max_keep=2)
        assert len(keep) == 2

    def test_2d_suppression(self):
        boxes = np.array([[0, 0, 10, 10], [1, 1, 11, 11], [50, 50, 60, 60]],
                         dtype=np.float64)
        scores = np.array([0.9, 0.85, 0.3])
        keep = nms_2d(boxes, scores, iou_threshold=0.5)
        assert list(keep) == [0, 2]

    def test_2d_empty(self):
        keep = nms_2d(np.zeros((0, 4)), np.zeros(0))
        assert len(keep) == 0


def _det(frame_boxes):
    return DetectionResult(boxes=frame_boxes)


class TestAveragePrecision:
    def test_perfect_detection_scores_100(self):
        gt = [Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car")]
        pred = [Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                      score=0.9)]
        ap = average_precision([_det(pred)], [gt], "Car")
        assert ap == pytest.approx(100.0)

    def test_miss_scores_0(self):
        gt = [Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car")]
        ap = average_precision([_det([])], [gt], "Car")
        assert ap == 0.0

    def test_false_positive_lowers_ap(self):
        gt = [Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car")]
        pred = [Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                      score=0.5),
                Box3D(30, 5, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                      score=0.9)]
        ap = average_precision([_det(pred)], [gt], "Car")
        assert 0.0 < ap < 100.0

    def test_duplicate_detection_counts_once(self):
        from repro.detection import match_detections
        gt = [Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car")]
        pred = [Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                      score=0.9),
                Box3D(10.1, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                      score=0.8)]
        tp, n_gt = match_detections(pred, gt, iou_threshold=0.5)
        assert n_gt == 1
        assert list(tp) == [True, False]  # second hit on same gt is a FP

    def test_localization_threshold_enforced(self):
        gt = [Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car")]
        # Way off: IoU below threshold → counted as FP.
        pred = [Box3D(14, 2, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                      score=0.9)]
        ap = average_precision([_det(pred)], [gt], "Car")
        assert ap == 0.0

    def test_score_ordering_matters(self):
        gt = [Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car")]
        good_first = [
            Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car", score=0.9),
            Box3D(30, 5, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car", score=0.3)]
        bad_first = [
            Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car", score=0.3),
            Box3D(30, 5, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car", score=0.9)]
        ap_good = average_precision([_det(good_first)], [gt], "Car")
        ap_bad = average_precision([_det(bad_first)], [gt], "Car")
        assert ap_good > ap_bad

    def test_map_averages_present_classes(self):
        gt = [[Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car"),
               Box3D(8, 3, 0.87, 0.8, 0.6, 1.73, 0.0, label="Pedestrian")]]
        pred = [_det([Box3D(10, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                            score=0.9)])]
        result = evaluate_map(pred, gt)
        assert result["Car"] == pytest.approx(100.0)
        assert result["Pedestrian"] == 0.0
        # Cyclist absent from gt → excluded from the mean.
        assert result["mAP"] == pytest.approx(50.0)

    def test_difficulty_filtering(self):
        import math
        hard_gt = Box3D(40, 0, 0.78, 3.9, 1.6, 1.56, 0.0, label="Car",
                        difficulty=2)
        config = EvalConfig(max_difficulty=1)
        ap = average_precision([_det([])], [[hard_gt]], "Car", config)
        # No gt within difficulty → the metric is undefined, not zero
        # (mirrors StreamReport's NaN-on-empty convention).
        assert math.isnan(ap)
