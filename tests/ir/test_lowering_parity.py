"""Cross-product parity of the lowered integer executors.

Satellite acceptance: bitwidth ∈ {4, 8, 16} × all four pattern families
× {Conv2d, ConvTranspose2d, Linear}, asserting

* ``forward`` (int64 multiply-accumulate) ≡ ``reference`` (float64
  fake-quant semantics) down to identical float32 bit patterns — the
  guarantee ``execution="lowered"`` vs ``execution="reference"`` rests
  on; and
* ``forward`` vs ``fake_quant_reference`` (the float32 training-side
  view) within **one rescaling ulp per path**: each side rounds to
  float32 once at its final rescale, so they agree to within two units
  in the last place at the output's full-scale magnitude.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.patterns import PATTERN_TYPES, generate_pattern
from repro.nn import Tensor
from repro.nn.quantized import (QuantizedConv2d, QuantizedConvTranspose2d,
                                QuantizedLinear, activation_scale)

BITWIDTHS = (4, 8, 16)


def _pattern(pattern_type):
    """A deterministic 2-of-9 kernel mask of the requested family."""
    return generate_pattern(2, 3, np.random.default_rng(7), pattern_type)


def _assert_bit_for_bit(executor, x):
    lowered = executor(x)
    reference = executor.reference(x)
    assert lowered.data.dtype == np.float32
    assert lowered.data.tobytes() == reference.data.tobytes()
    return lowered


def _assert_one_rescale_ulp(lowered, fake_quant):
    """Each path rounds to float32 once at the final rescale — one ulp
    of the full-scale magnitude per path, so the gap between the two is
    bounded by two spacings of the larger output."""
    a, b = lowered.data, fake_quant.data
    full_scale = np.float32(max(np.abs(a).max(), np.abs(b).max()))
    assert np.abs(a - b).max() <= 2 * np.spacing(full_scale)


@pytest.fixture
def activation():
    rng = np.random.default_rng(0)
    return Tensor(rng.standard_normal((2, 2, 6, 6)).astype(np.float32))


@pytest.mark.parametrize("bits", BITWIDTHS)
@pytest.mark.parametrize("pattern_type", PATTERN_TYPES)
class TestExecutorParity:
    def test_conv2d(self, bits, pattern_type, activation):
        pattern = _pattern(pattern_type)
        conv = nn.Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(1))
        conv.weight.data = conv.weight.data * pattern.mask()[None, None]
        act_bits = max(8, bits)
        executor = QuantizedConv2d.from_float(
            conv, activation_scale(activation.data, act_bits),
            weight_bits=bits, activation_bits=act_bits)
        # The pattern actually prunes im2col columns (skipping is live).
        assert not executor._keep_cols.all()
        lowered = _assert_bit_for_bit(executor, activation)
        _assert_one_rescale_ulp(lowered,
                                executor.fake_quant_reference(activation))

    def test_conv_transpose2d(self, bits, pattern_type, activation):
        pattern = _pattern(pattern_type)
        deconv = nn.ConvTranspose2d(2, 3, 3, stride=2, padding=1,
                                    rng=np.random.default_rng(2))
        deconv.weight.data = deconv.weight.data * pattern.mask()[None, None]
        act_bits = max(8, bits)
        executor = QuantizedConvTranspose2d.from_float(
            deconv, activation_scale(activation.data, act_bits),
            weight_bits=bits, activation_bits=act_bits)
        assert not executor._keep_cols.all()
        lowered = _assert_bit_for_bit(executor, activation)
        _assert_one_rescale_ulp(lowered,
                                executor.fake_quant_reference(activation))

    def test_linear(self, bits, pattern_type, activation):
        pattern = _pattern(pattern_type)
        linear = nn.Linear(18, 5, rng=np.random.default_rng(3))
        feature_mask = np.tile(pattern.mask().reshape(-1), 2)
        linear.weight.data = linear.weight.data * feature_mask[None, :]
        x = Tensor(np.random.default_rng(4)
                   .standard_normal((4, 18)).astype(np.float32))
        act_bits = max(8, bits)
        executor = QuantizedLinear.from_float(
            linear, activation_scale(x.data, act_bits),
            weight_bits=bits, activation_bits=act_bits)
        assert not executor._keep_cols.all()
        lowered = _assert_bit_for_bit(executor, x)
        _assert_one_rescale_ulp(lowered, executor.fake_quant_reference(x))


class TestSkippingExactness:
    """Dropping all-zero columns must not change the accumulation."""

    @pytest.mark.parametrize("bits", BITWIDTHS)
    def test_skipped_conv_equals_unskipped(self, bits, activation):
        conv = nn.Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(5))
        conv.weight.data = conv.weight.data \
            * _pattern("row").mask()[None, None]
        act_bits = max(8, bits)
        executor = QuantizedConv2d.from_float(
            conv, activation_scale(activation.data, act_bits),
            weight_bits=bits, activation_bits=act_bits)
        skipped = executor(activation)
        executor._keep_cols = np.ones_like(executor._keep_cols)
        executor._compact()     # rebuild packed weights from the mask
        assert executor._kept == executor._keep_cols.size
        dense = executor(activation)
        assert skipped.data.tobytes() == dense.data.tobytes()

    def test_dense_executor_skips_nothing(self, activation):
        conv = nn.Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(6))
        executor = QuantizedConv2d.from_float(
            conv, activation_scale(activation.data))
        assert executor._keep_cols.all()
