"""The ModelIR contract: one extraction, every consumer, round trips.

Covers the tentpole acceptance criteria: extraction happens once (a
single traced forward pass feeds grouping, profiling, and both
lowerings), the IR serializes to JSON losslessly, and a packed blob's
embedded IR re-lowers to an identical :class:`CompiledPlan` without
ever re-tracing the original float model.
"""

import json

import pytest

from repro.core import (UPAQCompressor, group_layers, hck_config,
                        pack_model, restore_model)
from repro.core.preprocessing import preprocess_model
from repro.hardware import compile_model, lower_to_plan
from repro.ir import ModelIR, extract_ir
from repro.ir.model_ir import NODE_KINDS
from repro.models import PointPillars
from repro.nn.graph import layer_map

from tests.models.conftest import TINY_PILLARS


def _tiny_pp(seed=0):
    return PointPillars(seed=seed, **TINY_PILLARS)


@pytest.fixture(scope="module")
def model():
    return _tiny_pp()


@pytest.fixture(scope="module")
def ir(model):
    return extract_ir(model, *model.example_inputs())


class TestExtraction:
    def test_covers_every_kernel_layer(self, model, ir):
        assert sorted(ir.layer_names) == sorted(layer_map(model))

    def test_nodes_in_topological_order(self, ir):
        position = {name: i for i, name in enumerate(ir.layer_names)}
        for node in ir:
            for pred in node.predecessors:
                assert position[pred] < position[node.name]

    def test_nodes_carry_static_facts(self, model, ir):
        layers = layer_map(model)
        for node in ir:
            assert node.kind in NODE_KINDS
            assert node.weight_shape \
                == tuple(layers[node.name].weight.data.shape)
            assert node.weight_count > 0

    def test_one_pass_profiles_every_node(self, ir):
        for node in ir:
            assert node.profile is not None
            assert node.macs > 0
            assert node.profile.input_absmax >= 0

    def test_has_edges(self, ir):
        assert len(ir.edges) > 0
        assert ir.graph().number_of_edges() == len(ir.edges)

    def test_fresh_extraction_annotates_dense(self, ir):
        for node in ir:
            assert node.compression is not None
            assert node.compression.bits == 32
            assert node.compression.scheme == "dense"


class TestGroupingOnIR:
    def test_group_layers_matches_one_call_wrapper(self, model, ir):
        from_ir = group_layers(ir)
        one_call = preprocess_model(model, *model.example_inputs())
        assert from_ir.groups == one_call.groups
        assert from_ir.roots == one_call.roots

    def test_every_layer_grouped_exactly_once(self, ir):
        groups = group_layers(ir)
        assert groups.num_layers == len(ir)
        members = [name for _, layers in groups for name in layers]
        assert sorted(members) == sorted(ir.layer_names)


class TestSerialization:
    def test_json_round_trip_is_lossless(self, ir):
        record = ir.to_json()
        restored = ModelIR.from_json(json.loads(json.dumps(record)))
        assert restored.to_json() == record

    def test_round_trip_preserves_annotations(self, model):
        compressed = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        restored = ModelIR.from_json(compressed.ir.to_json())
        for original in compressed.ir:
            twin = restored.node(original.name)
            assert twin.compression == original.compression
            assert twin.profile == original.profile


class TestSingleExtraction:
    """The compressor traces once and shares the IR with every stage."""

    def test_report_ir_prices_identically(self):
        model = _tiny_pp(seed=1)
        report = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        assert report.ir is not None
        replayed = lower_to_plan(report.ir)
        assert replayed.compression_ratio == report.compression_ratio

    def test_compile_model_agrees_with_ir_lowering(self, model, ir):
        plan = compile_model(model, *model.example_inputs())
        assert lower_to_plan(ir) == plan


class TestPackedRoundTrip:
    """Acceptance: pack → restore → re-lower with no re-trace."""

    @pytest.fixture(scope="class")
    def compressed(self):
        model = _tiny_pp(seed=2)
        return UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())

    def test_restored_ir_lowering_is_identical(self, compressed,
                                               monkeypatch):
        original_plan = lower_to_plan(compressed.ir)
        blob = pack_model(compressed.model, ir=compressed.ir)

        target = _tiny_pp(seed=3)
        report = restore_model(blob, target)
        assert report.complete
        assert report.ir is not None

        # From here on, tracing is forbidden: the embedded IR must be
        # enough to rebuild the plan.
        def _no_retrace(*args, **kwargs):
            raise AssertionError("restore path re-traced the model")
        monkeypatch.setattr("repro.ir.extract.compute_graph", _no_retrace)

        restored_plan = lower_to_plan(report.ir)
        assert restored_plan == original_plan

    def test_restored_ir_preserves_per_layer_choices(self, compressed):
        blob = pack_model(compressed.model, ir=compressed.ir)
        report = restore_model(blob, _tiny_pp(seed=4))
        for original in compressed.ir:
            twin = report.ir.node(original.name)
            assert (twin.compression.bits, twin.compression.scheme,
                    twin.compression.sparsity) \
                == (original.compression.bits,
                    original.compression.scheme,
                    original.compression.sparsity)
