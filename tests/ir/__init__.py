"""Tests for the layer-level ModelIR and its two lowerings."""
