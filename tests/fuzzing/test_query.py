"""The EVA-style query layer: combinators, parser, and their agreement."""

import math

import pytest

from repro.fuzzing import F, QueryError, parse_query

ROWS = [
    {"scenario": "dense_traffic", "condition": "clean", "status": "ok",
     "deadline_met": True, "fallback": False, "latency_ms": 12.5,
     "num_detections": 4, "labels": ["Car", "Cyclist"], "gt_count": 5,
     "max_score": 0.9},
    {"scenario": "night_rain", "condition": "faulty", "status": "degraded",
     "deadline_met": True, "fallback": False, "latency_ms": 30.0,
     "num_detections": 2, "labels": ["Pedestrian"], "gt_count": 3,
     "max_score": 0.4},
    {"scenario": "night_rain", "condition": "pressure", "status": "ok",
     "deadline_met": False, "fallback": True, "latency_ms": 55.0,
     "num_detections": 0, "labels": [], "gt_count": 2,
     "max_score": math.nan},
    {"scenario": "sensor_dropout", "condition": "faulty",
     "status": "dropped", "deadline_met": True, "fallback": False,
     "latency_ms": 0.0, "num_detections": 0, "labels": [], "gt_count": 0,
     "max_score": math.nan},
]


class TestCombinators:
    def test_equality(self):
        assert (F.status == "ok").count(ROWS) == 2

    def test_inequality_and_ordering(self):
        assert (F.latency_ms > 20).count(ROWS) == 2
        assert (F.latency_ms <= 12.5).count(ROWS) == 2
        assert (F.status != "ok").count(ROWS) == 2

    def test_and_or_not(self):
        q = (F.status == "ok") & (F.deadline_met == False)  # noqa: E712
        assert [r["condition"] for r in q.filter(ROWS)] == ["pressure"]
        q = (F.status == "dropped") | (F.status == "degraded")
        assert q.count(ROWS) == 2
        assert (~(F.status == "ok")).count(ROWS) == 2

    def test_bare_field_truthiness(self):
        assert F.fallback._truthy().count(ROWS) == 1
        assert (~F.deadline_met).count(ROWS) == 1

    def test_membership_on_collection_fields(self):
        assert (F.labels == "Car").count(ROWS) == 1
        assert (F.labels != "Car").count(ROWS) == 3
        assert F.labels.contains("Pedestrian").count(ROWS) == 1

    def test_ordering_on_collection_raises(self):
        with pytest.raises(QueryError, match="collection"):
            (F.labels > "Car").matches(ROWS[0])

    def test_missing_field_never_matches(self):
        assert (F.nope == 1).count(ROWS) == 0
        # ...so its negation matches everything.
        assert (~(F.nope == 1)).count(ROWS) == len(ROWS)

    def test_type_mismatch_is_false_not_error(self):
        assert (F.status > 3).count(ROWS) == 0

    def test_nan_compares_false(self):
        assert (F.max_score > 0.0).count(ROWS) == 2

    def test_filter_preserves_order(self):
        kept = (F.gt_count > 0).filter(ROWS)
        assert [r["scenario"] for r in kept] == [
            "dense_traffic", "night_rain", "night_rain"]


class TestParser:
    def test_simple_equality(self):
        assert parse_query("status = ok").count(ROWS) == 2
        assert parse_query("status == ok").count(ROWS) == 2

    def test_quoted_strings_and_numbers(self):
        assert parse_query("scenario = 'night_rain'").count(ROWS) == 2
        assert parse_query("latency_ms >= 30.0").count(ROWS) == 2
        assert parse_query("num_detections = 0").count(ROWS) == 2

    def test_booleans(self):
        assert parse_query("deadline_met = false").count(ROWS) == 1
        assert parse_query("fallback = true").count(ROWS) == 1

    def test_bare_word_truthiness(self):
        assert parse_query("fallback").count(ROWS) == 1
        assert parse_query("not deadline_met").count(ROWS) == 1

    def test_precedence_and_parens(self):
        # `and` binds tighter than `or`.
        q = parse_query("status = dropped or status = ok and "
                        "latency_ms > 20")
        assert q.count(ROWS) == 2
        q = parse_query("(status = dropped or status = ok) and "
                        "latency_ms > 20")
        assert q.count(ROWS) == 1

    def test_membership_via_text(self):
        assert parse_query("labels = Car").count(ROWS) == 1

    @pytest.mark.parametrize("expr", [
        "", "status =", "= ok", "status ~ ok", "(status = ok",
        "status = ok extra garbage ???",
    ])
    def test_malformed_queries_raise(self, expr):
        with pytest.raises(QueryError):
            parse_query(expr)

    def test_parser_matches_combinators(self):
        text = ("status = degraded and latency_ms > 20 or "
                "not deadline_met")
        built = ((F.status == "degraded") & (F.latency_ms > 20)) \
            | (~F.deadline_met)
        parsed = parse_query(text)
        for row in ROWS:
            assert parsed.matches(row) == built.matches(row)
