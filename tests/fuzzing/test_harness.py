"""The sweep harness on minimal matrices, plus the fuzz/query CLI."""

import json

import pytest

from repro.cli import main
from repro.fuzzing import (CONDITIONS, FuzzConfig, build_preset_config,
                           cell_seed, check_gate, load_report, make_baseline,
                           run_fuzz, write_baseline, write_report)


def _one_cell(scenario="dense_traffic", preset="hck-4bit",
              condition="clean", frames=2, seed=0):
    return FuzzConfig(scenarios=(scenario,), presets=(preset,),
                      conditions=(condition,), frames_per_cell=frames,
                      seed=seed)


@pytest.fixture(scope="module")
def clean_report():
    return run_fuzz(_one_cell())


class TestMatrixValidation:
    def test_unknown_axes_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            FuzzConfig(scenarios=("nope",))
        with pytest.raises(ValueError, match="preset"):
            FuzzConfig(presets=("nope",))
        with pytest.raises(ValueError, match="condition"):
            FuzzConfig(conditions=("nope",))
        with pytest.raises(ValueError, match="frames"):
            FuzzConfig(frames_per_cell=0)

    def test_preset_recipes_resolve(self):
        assert build_preset_config("float") is None
        assert build_preset_config("hck-4bit").quant_bits == (4,)
        assert build_preset_config("lck-16bit").quant_bits == (16,)
        with pytest.raises(KeyError):
            build_preset_config("nope")

    def test_cell_seed_stable_and_distinct(self):
        a = cell_seed(0, "dense_traffic|hck|clean")
        assert a == cell_seed(0, "dense_traffic|hck|clean")
        assert a != cell_seed(1, "dense_traffic|hck|clean")
        assert a != cell_seed(0, "night_rain|hck|clean")


class TestRunFuzz:
    def test_cell_shape(self, clean_report):
        assert list(clean_report.cells) == ["dense_traffic|hck-4bit|clean"]
        metrics = clean_report.cells["dense_traffic|hck-4bit|clean"]
        assert metrics["ok_frames"] + metrics["degraded_frames"] \
            + metrics["dropped_frames"] == 2
        assert metrics["p50_ms"] <= metrics["p99_ms"]
        assert len(clean_report.rows) == 2

    def test_rows_reference_cell(self, clean_report):
        for row in clean_report.rows:
            assert row["cell"] == "dense_traffic|hck-4bit|clean"
            assert row["status"] in ("ok", "degraded", "dropped")
            assert row["gt_count"] >= 0

    def test_run_twice_identical(self, clean_report):
        again = run_fuzz(_one_cell())
        assert json.dumps(clean_report.to_json(), sort_keys=True) \
            == json.dumps(again.to_json(), sort_keys=True)

    def test_seed_changes_faulty_stream(self):
        # Fault schedules derive from the sweep seed; under the faulty
        # condition different seeds must produce different cell rows.
        a = run_fuzz(_one_cell(condition="faulty", frames=4, seed=0))
        b = run_fuzz(_one_cell(condition="faulty", frames=4, seed=1))
        assert a.rows != b.rows

    def test_subset_reproduces_full_sweep_cell(self):
        # Cell content is independent of sweep composition: a 1-cell
        # sweep must byte-match the same cell from a 2-condition sweep.
        full = run_fuzz(FuzzConfig(scenarios=("dense_traffic",),
                                   presets=("hck-4bit",),
                                   conditions=("clean", "faulty"),
                                   frames_per_cell=2, seed=0))
        subset = run_fuzz(_one_cell(condition="faulty"))
        key = "dense_traffic|hck-4bit|faulty"
        assert subset.cells[key] == full.cells[key]

    def test_pressure_condition_misses_deadlines(self):
        report = run_fuzz(_one_cell(condition="pressure"))
        metrics = report.cells["dense_traffic|hck-4bit|pressure"]
        assert metrics["deadline_hit_rate"] == 0.0
        assert metrics["missed_deadline_frames"] == 2

    def test_report_roundtrip(self, clean_report, tmp_path):
        path = tmp_path / "report.json"
        write_report(clean_report, str(path))
        loaded = load_report(str(path))
        assert loaded.config == clean_report.config
        assert loaded.cells == clean_report.cells
        assert loaded.rows == clean_report.rows

    def test_gate_against_own_baseline(self, clean_report):
        gate = check_gate(clean_report, make_baseline(clean_report))
        assert gate.passed
        assert gate.checked_cells == 1


class TestConditionsRegistry:
    def test_pressure_fallback_is_known_preset(self):
        fallback = CONDITIONS["pressure"].fallback_preset
        assert build_preset_config(fallback) is not None

    def test_faulty_actually_injects(self):
        assert CONDITIONS["faulty"].injects_faults
        assert not CONDITIONS["clean"].injects_faults


class TestCLI:
    def _fuzz(self, *extra):
        return main(["fuzz", "--scenarios", "dense_traffic",
                     "--presets", "hck-4bit", "--conditions", "clean",
                     "--frames", "2", *extra])

    def test_write_baseline_then_pass(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        assert self._fuzz("--baseline", baseline, "--write-baseline") == 0
        gate_path = str(tmp_path / "gate.json")
        assert self._fuzz("--baseline", baseline,
                          "--gate-report", gate_path) == 0
        payload = json.loads(open(gate_path).read())
        assert payload["passed"] is True
        assert payload["checked_cells"] == 1

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        # Doctor the baseline to promise a much higher mAP than the
        # sweep can deliver: the gate must fail with exit code 1.
        baseline = str(tmp_path / "baseline.json")
        report = run_fuzz(_one_cell())
        for metrics in report.cells.values():
            metrics["mAP"] = metrics["mAP"] + 50.0
        write_baseline(report, baseline)
        gate_path = str(tmp_path / "gate.json")
        assert self._fuzz("--baseline", baseline,
                          "--gate-report", gate_path) == 1
        payload = json.loads(open(gate_path).read())
        assert payload["failures"][0]["kind"] == "map_drop"

    def test_latency_regression_exits_nonzero(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        report = run_fuzz(_one_cell())
        for metrics in report.cells.values():
            metrics["p99_ms"] = metrics["p99_ms"] / 2.0
        write_baseline(report, baseline)
        assert self._fuzz("--baseline", baseline) == 1

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        assert self._fuzz("--baseline",
                          str(tmp_path / "absent.json")) == 2

    def test_mismatched_baseline_exits_2(self, tmp_path, capsys):
        baseline = str(tmp_path / "baseline.json")
        write_baseline(run_fuzz(_one_cell(seed=5)), baseline)
        assert self._fuzz("--baseline", baseline) == 2

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["fuzz", "--scenarios", "nope"]) == 2

    def test_list(self, capsys):
        assert main(["fuzz", "--list"]) == 0
        out = capsys.readouterr().out
        assert "dense_traffic" in out and "hck-4bit" in out \
            and "pressure" in out

    def test_query_cli(self, clean_report, tmp_path, capsys):
        path = str(tmp_path / "report.json")
        write_report(clean_report, path)
        assert main(["query", "status = ok", "--report", path,
                     "--count"]) == 0
        assert capsys.readouterr().out.strip() == "2"
        assert main(["query", "latency_ms > 0 and gt_count >= 0",
                     "--report", path]) == 0
        lines = [line for line in
                 capsys.readouterr().out.strip().splitlines() if line]
        assert len(lines) == 2
        assert json.loads(lines[0])["cell"] \
            == "dense_traffic|hck-4bit|clean"

    def test_query_bad_expression_exits_2(self, tmp_path, capsys):
        assert main(["query", "status ~~~ ok",
                     "--report", str(tmp_path / "r.json")]) == 2

    def test_query_missing_report_exits_2(self, tmp_path, capsys):
        assert main(["query", "status = ok",
                     "--report", str(tmp_path / "absent.json")]) == 2
