"""Gate logic against synthetic baselines — no model runs needed."""

import json
import math

import pytest

from repro.fuzzing import (FuzzConfig, FuzzReport, GateThresholds,
                           check_gate, load_baseline, make_baseline,
                           write_baseline)


def _metrics(**overrides):
    metrics = {
        "mAP": 40.0, "ap_car": 50.0, "ap_pedestrian": 30.0,
        "ap_cyclist": 40.0, "mAP_easy": 55.0, "mAP_moderate": 40.0,
        "mAP_hard": 30.0, "p50_ms": 10.0, "p99_ms": 20.0,
        "deadline_hit_rate": 1.0, "ok_frames": 3, "degraded_frames": 0,
        "dropped_frames": 0, "missed_deadline_frames": 0,
        "held_detection_frames": 0, "silent_miss_frames": 0,
        "fallback_activations": 0, "total_energy_mj": 1.0,
        "num_detections": 12,
    }
    metrics.update(overrides)
    return metrics


def _report(cells):
    config = FuzzConfig(scenarios=("dense_traffic",), presets=("hck",),
                        conditions=("clean",), frames_per_cell=3, seed=0)
    return FuzzReport(config=config, cells=dict(cells))


BASE = _report({"dense_traffic|hck|clean": _metrics()})
BASELINE = make_baseline(BASE)


class TestThresholds:
    def test_identical_run_passes(self):
        gate = check_gate(_report(BASE.cells), BASELINE)
        assert gate.passed
        assert gate.checked_cells == 1
        assert gate.failures == []

    def test_small_map_drop_tolerated(self):
        current = _report({"dense_traffic|hck|clean": _metrics(mAP=37.5)})
        assert check_gate(current, BASELINE).passed

    def test_large_map_drop_fails(self):
        current = _report({"dense_traffic|hck|clean": _metrics(mAP=36.0)})
        gate = check_gate(current, BASELINE)
        assert not gate.passed
        assert gate.failures[0]["metric"] == "mAP"
        assert gate.failures[0]["kind"] == "map_drop"

    def test_map_improvement_passes(self):
        current = _report({"dense_traffic|hck|clean": _metrics(mAP=90.0)})
        assert check_gate(current, BASELINE).passed

    def test_difficulty_tier_drop_fails(self):
        current = _report(
            {"dense_traffic|hck|clean": _metrics(mAP_hard=20.0)})
        gate = check_gate(current, BASELINE)
        assert not gate.passed
        assert gate.failures[0]["metric"] == "mAP_hard"

    def test_p99_rise_fails(self):
        current = _report({"dense_traffic|hck|clean": _metrics(p99_ms=26.0)})
        gate = check_gate(current, BASELINE)
        assert not gate.passed
        assert gate.failures[0]["kind"] == "p99_rise"

    def test_p99_within_fraction_passes(self):
        current = _report({"dense_traffic|hck|clean": _metrics(p99_ms=24.0)})
        assert check_gate(current, BASELINE).passed

    def test_hit_rate_drop_fails(self):
        current = _report(
            {"dense_traffic|hck|clean": _metrics(deadline_hit_rate=0.5)})
        gate = check_gate(current, BASELINE)
        assert not gate.passed
        assert gate.failures[0]["kind"] == "hit_rate_drop"

    def test_custom_thresholds(self):
        current = _report({"dense_traffic|hck|clean": _metrics(mAP=36.0)})
        loose = GateThresholds(map_drop=10.0)
        assert check_gate(current, BASELINE, loose).passed
        strict = GateThresholds(map_drop=0.5)
        current = _report({"dense_traffic|hck|clean": _metrics(mAP=39.0)})
        assert not check_gate(current, BASELINE, strict).passed


class TestNaNRules:
    def test_nan_baseline_metric_skipped(self):
        base = make_baseline(_report(
            {"dense_traffic|hck|clean": _metrics(mAP=math.nan)}))
        current = _report({"dense_traffic|hck|clean": _metrics(mAP=0.0)})
        assert check_gate(current, base).passed

    def test_metric_vanishing_fails(self):
        current = _report(
            {"dense_traffic|hck|clean": _metrics(mAP=math.nan)})
        gate = check_gate(current, BASELINE)
        assert not gate.passed
        assert gate.failures[0]["kind"] == "vanished"

    def test_nan_roundtrips_through_baseline_json(self, tmp_path):
        base_report = _report(
            {"dense_traffic|hck|clean": _metrics(ap_pedestrian=math.nan)})
        path = tmp_path / "baseline.json"
        write_baseline(base_report, str(path))
        payload = json.loads(path.read_text())
        cell = payload["cells"]["dense_traffic|hck|clean"]
        assert cell["ap_pedestrian"] is None  # strict JSON, no NaN
        assert check_gate(base_report, load_baseline(str(path))).passed


class TestCellCoverage:
    def test_new_cell_warns_but_passes(self):
        current = _report({
            "dense_traffic|hck|clean": _metrics(),
            "night_rain|hck|clean": _metrics(),
        })
        gate = check_gate(current, BASELINE)
        assert gate.passed
        assert gate.new_cells == ["night_rain|hck|clean"]
        assert gate.checked_cells == 1

    def test_subset_sweep_reports_unchecked(self):
        base = make_baseline(_report({
            "dense_traffic|hck|clean": _metrics(),
            "night_rain|hck|clean": _metrics(),
        }))
        gate = check_gate(_report({"dense_traffic|hck|clean": _metrics()}),
                          base)
        assert gate.passed
        assert gate.unchecked_cells == ["night_rain|hck|clean"]

    @pytest.mark.parametrize("key,value", [
        ("seed", 1), ("frames_per_cell", 5), ("model", "pointpillars"),
        ("execution", "lowered"),
    ])
    def test_config_mismatch_raises(self, key, value):
        baseline = dict(BASELINE)
        baseline[key] = value
        with pytest.raises(ValueError, match=key):
            check_gate(BASE, baseline)


class TestGateReportPayload:
    def test_json_shape(self):
        current = _report({"dense_traffic|hck|clean": _metrics(mAP=10.0)})
        payload = check_gate(current, BASELINE).to_json()
        assert payload["passed"] is False
        assert payload["checked_cells"] == 1
        assert payload["thresholds"]["map_drop"] == 3.0
        failure = payload["failures"][0]
        assert failure["cell"] == "dense_traffic|hck|clean"
        assert failure["baseline"] == 40.0
        assert failure["current"] == 10.0
        json.dumps(payload)  # serializable

    def test_summary_mentions_verdict(self):
        gate = check_gate(_report(BASE.cells), BASELINE)
        assert "PASS" in gate.summary()
        failing = check_gate(
            _report({"dense_traffic|hck|clean": _metrics(mAP=1.0)}),
            BASELINE)
        assert "FAIL" in failing.summary()
