"""The real sweep, gated and re-run — excluded from tier-1 (`-m fuzz`).

These are the acceptance tests for the scenario-matrix harness: a
multi-family, multi-preset sweep is bit-deterministic under one seed,
and its cells gate cleanly against the committed
``artifacts/fuzz_baseline.json`` (whose cells were produced by a *full*
matrix run — cell seeding is composition-independent, so this subset
must reproduce them exactly).
"""

import json
import os

import pytest

from repro.fuzzing import FuzzConfig, check_gate, load_baseline, run_fuzz

pytestmark = pytest.mark.fuzz

BASELINE_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             "..", "..", "artifacts", "fuzz_baseline.json")

SWEEP = FuzzConfig(
    scenarios=("dense_traffic", "occlusion_chain", "night_rain",
               "sensor_dropout", "near_duplicate"),
    presets=("hck", "lck", "hck-4bit"),
    conditions=("clean", "faulty"),
    frames_per_cell=3, seed=0)


@pytest.fixture(scope="module")
def sweep_report():
    return run_fuzz(SWEEP)


class TestSweepDeterminism:
    def test_covers_the_promised_matrix(self, sweep_report):
        assert len(SWEEP.scenarios) >= 5
        assert len(SWEEP.presets) >= 3
        assert len(sweep_report.cells) == SWEEP.num_cells == 30

    def test_rerun_is_bit_identical(self, sweep_report):
        again = run_fuzz(SWEEP)
        assert json.dumps(sweep_report.to_json(), sort_keys=True) \
            == json.dumps(again.to_json(), sort_keys=True)

    def test_faulty_cells_differ_from_clean(self, sweep_report):
        # The chaos axis is live: at least one family must show a
        # different stream under fault injection than under clean.
        differs = False
        for scenario in SWEEP.scenarios:
            clean = sweep_report.cells[f"{scenario}|hck|clean"]
            faulty = sweep_report.cells[f"{scenario}|hck|faulty"]
            if clean["dropped_frames"] != faulty["dropped_frames"] \
                    or clean["p99_ms"] != faulty["p99_ms"]:
                differs = True
        assert differs


class TestCommittedBaseline:
    def test_gate_passes_against_committed_baseline(self, sweep_report):
        gate = check_gate(sweep_report, load_baseline(BASELINE_PATH))
        assert gate.checked_cells == 30
        assert gate.new_cells == []
        assert gate.passed, gate.to_json()["failures"]

    def test_gate_report_is_deterministic(self, sweep_report):
        baseline = load_baseline(BASELINE_PATH)
        first = json.dumps(check_gate(sweep_report, baseline).to_json(),
                           sort_keys=True)
        second = json.dumps(
            check_gate(run_fuzz(SWEEP), baseline).to_json(),
            sort_keys=True)
        assert first == second

    def test_ladder_subset_reproduces_baseline_cells(self):
        # Cell seeding is composition-independent: a ladder-only subset
        # sweep must reproduce the full matrix's ladder cells exactly.
        sweep = FuzzConfig(scenarios=("dense_traffic", "night_rain"),
                           presets=("hck", "lck-16bit"),
                           conditions=("ladder",),
                           frames_per_cell=3, seed=0)
        report = run_fuzz(sweep)
        gate = check_gate(report, load_baseline(BASELINE_PATH))
        assert gate.checked_cells == 4
        assert gate.new_cells == []
        assert gate.passed, gate.to_json()["failures"]
        for metrics in report.cells.values():
            assert metrics["ladder_demotions"] >= 1
            assert metrics["ladder_promotions"] >= 1

    def test_baseline_covers_full_default_matrix(self):
        baseline = load_baseline(BASELINE_PATH)
        # 6 scenarios x 4 presets x 6 conditions committed.
        assert len(baseline["cells"]) == 144
        conditions = {key.split("|")[2] for key in baseline["cells"]}
        assert conditions == {"clean", "faulty", "pressure", "batched",
                              "ladder", "sparse"}
        assert baseline["seed"] == 0
        assert baseline["frames_per_cell"] == 3

    def test_sparse_subset_reproduces_baseline_cells(self):
        # Composition-independent seeding again, now for the sparse
        # execution condition: a sparse-only subset sweep must
        # reproduce the committed full-matrix sparse cells exactly,
        # and — because sparse lowered execution is bit-identical to
        # dense — match the corresponding clean cells' detections.
        sweep = FuzzConfig(scenarios=("far_sparse", "sensor_dropout"),
                           presets=("hck", "hck-4bit"),
                           conditions=("sparse",),
                           frames_per_cell=3, seed=0)
        report = run_fuzz(sweep)
        baseline = load_baseline(BASELINE_PATH)
        gate = check_gate(report, baseline)
        assert gate.checked_cells == 4
        assert gate.new_cells == []
        assert gate.passed, gate.to_json()["failures"]
        for key, metrics in report.cells.items():
            clean_key = key.rsplit("|", 1)[0] + "|clean"
            clean = baseline["cells"][clean_key]
            assert metrics["mAP"] == clean["mAP"]
            assert metrics["num_detections"] == clean["num_detections"]
