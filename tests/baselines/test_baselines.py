"""Tests for the four baseline compression frameworks."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import (ClipQ, LidarPTQ, PsAndQs, RToss,
                             build_framework, FRAMEWORK_REGISTRY)
from repro.baselines.rtoss import ENTRY_PATTERNS
from repro.nn import Tensor


class TinyNet(nn.Module):
    def __init__(self, seed=0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.conv1 = nn.Conv2d(2, 6, 3, padding=1, rng=rng)
        self.conv2 = nn.Conv2d(6, 6, 3, padding=1, rng=rng)
        self.proj = nn.Conv2d(6, 2, 1, rng=rng)

    def forward(self, x):
        return self.proj(self.conv2(self.conv1(x).relu()).relu())

    def example_inputs(self):
        rng = np.random.default_rng(9)
        return (Tensor(rng.standard_normal((1, 2, 8, 8)).astype(np.float32)),)


@pytest.fixture
def model():
    return TinyNet()


class TestRegistry:
    def test_all_registered(self):
        assert set(FRAMEWORK_REGISTRY) >= {"psqs", "clipq", "rtoss",
                                           "lidarptq"}

    def test_build_by_fuzzy_name(self):
        assert isinstance(build_framework("Ps&Qs"), PsAndQs)
        assert isinstance(build_framework("CLIP-Q"), ClipQ)
        assert isinstance(build_framework("r-toss"), RToss)
        assert isinstance(build_framework("LiDAR-PTQ"), LidarPTQ)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_framework("sparseml")


class TestPsAndQs:
    def test_hits_target_sparsity(self, model):
        fw = PsAndQs(target_sparsity=0.4, bits=8)
        report = fw.compress(model, *model.example_inputs())
        assert report.overall_sparsity == pytest.approx(0.4, abs=0.08)

    def test_uniform_bits(self, model):
        report = PsAndQs(bits=8).compress(model, *model.example_inputs())
        assert {c.bits for c in report.choices} == {8}

    def test_scheme_unstructured(self, model):
        report = PsAndQs().compress(model, *model.example_inputs())
        from repro.hardware import get_annotation
        for _, module in report.model.named_modules():
            if hasattr(module, "kernel_size"):
                assert get_annotation(module).scheme == "unstructured"

    def test_compression_near_paper_value(self, model):
        report = PsAndQs().compress(model, *model.example_inputs())
        assert 1.4 < report.compression_ratio < 2.6   # paper: 1.89×

    def test_invalid_sparsity_raises(self):
        with pytest.raises(ValueError):
            PsAndQs(target_sparsity=1.0)


class TestClipQ:
    def test_clip_fraction_pruned(self, model):
        report = ClipQ(clip_percentile=30).compress(
            model, *model.example_inputs())
        assert report.overall_sparsity == pytest.approx(0.3, abs=0.05)

    def test_small_weights_pruned_large_kept(self, model):
        report = ClipQ(clip_percentile=50).compress(
            model, *model.example_inputs())
        orig = dict(model.named_parameters())["conv1.weight"].data
        comp = dict(report.model.named_parameters())["conv1.weight"].data
        threshold = np.percentile(np.abs(orig), 50)
        assert (comp[np.abs(orig) <= threshold * 0.999] == 0).all()
        assert (comp[np.abs(orig) > threshold * 1.3] != 0).all()

    def test_invalid_percentile_raises(self):
        with pytest.raises(ValueError):
            ClipQ(clip_percentile=100.0)


class TestRToss:
    def test_entry_patterns_have_requested_entries(self):
        for n, patterns in ENTRY_PATTERNS.items():
            for mask in patterns:
                assert mask.sum() <= n
                assert mask.sum() >= 2

    def test_3x3_kernels_patterned(self, model):
        report = RToss(n_entries=3, connectivity_percentile=0).compress(
            model, *model.example_inputs())
        weights = dict(report.model.named_parameters())["conv1.weight"].data
        nnz = (weights != 0).reshape(-1, 9).sum(axis=1)
        assert (nnz <= 3).all()

    def test_connectivity_pruning_kills_weak_kernels(self, model):
        report = RToss(n_entries=3, connectivity_percentile=40).compress(
            model, *model.example_inputs())
        weights = dict(report.model.named_parameters())["conv1.weight"].data
        kernel_nnz = (weights != 0).reshape(-1, 9).sum(axis=1)
        assert (kernel_nnz == 0).sum() >= int(0.3 * len(kernel_nnz))

    def test_1x1_layers_untouched(self, model):
        report = RToss().compress(model, *model.example_inputs())
        orig = dict(model.named_parameters())["proj.weight"].data
        comp = dict(report.model.named_parameters())["proj.weight"].data
        np.testing.assert_array_equal(orig, comp)

    def test_no_quantization(self, model):
        report = RToss().compress(model, *model.example_inputs())
        assert all(c.bits == 32 for c in report.choices)

    def test_per_kernel_masks_differ(self, model):
        # Unlike UPAQ, R-TOSS picks the mask per kernel.
        report = RToss(connectivity_percentile=0).compress(
            model, *model.example_inputs())
        weights = dict(report.model.named_parameters())["conv1.weight"].data
        masks = (weights != 0).reshape(-1, 9)
        assert len({tuple(m) for m in masks.tolist()}) > 1

    def test_invalid_entries_raises(self):
        with pytest.raises(ValueError):
            RToss(n_entries=7)


class TestLidarPTQ:
    def test_no_pruning(self, model):
        report = LidarPTQ().compress(model, *model.example_inputs())
        assert report.overall_sparsity < 0.05

    def test_boundary_layers_high_precision(self, model):
        report = LidarPTQ(bits=8, boundary_bits=16).compress(
            model, *model.example_inputs())
        by_layer = {c.layer: c.bits for c in report.choices}
        assert by_layer["conv1"] == 16
        assert by_layer["proj"] == 16
        assert by_layer["conv2"] == 8

    def test_no_finetuning_flag(self):
        assert LidarPTQ.uses_finetuning is False

    def test_quantization_error_small(self, model):
        report = LidarPTQ().compress(model, *model.example_inputs())
        orig = dict(model.named_parameters())["conv2.weight"].data
        comp = dict(report.model.named_parameters())["conv2.weight"].data
        rel_err = np.abs(orig - comp).max() / np.abs(orig).max()
        assert rel_err < 0.02

    def test_adaptive_rounding_beats_or_matches_nearest_on_output(self):
        """Error-feedback rounding should reduce accumulated output bias."""
        rng = np.random.default_rng(5)
        weights = rng.standard_normal((8, 64)).astype(np.float64) * 0.1
        x = np.abs(rng.standard_normal((64, 256)))   # post-ReLU activations
        from repro.baselines.lidar_ptq import _adaptive_round
        from repro.core import quantize_to_int
        _, scale = quantize_to_int(weights.astype(np.float32), 6)
        moments = (x ** 2).mean(axis=1)
        adaptive = _adaptive_round(weights, scale, 6, moments)
        codes, _ = quantize_to_int(weights.astype(np.float32), 6)
        nearest = codes * scale
        err_adaptive = np.abs((adaptive - weights) @ x).mean()
        err_nearest = np.abs((nearest - weights) @ x).mean()
        assert err_adaptive <= err_nearest * 1.05


class TestFinetune:
    def test_masked_finetune_preserves_zeros(self):
        from repro.models import PointPillars
        from repro.pointcloud import (LidarConfig, SceneConfig,
                                      SceneGenerator)
        from repro.pointcloud.voxelize import PillarConfig

        pillar_cfg = PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8),
                                  pillar_size=0.8)
        model = PointPillars(pillar_config=pillar_cfg, pfn_channels=8,
                             stage_channels=(8, 16, 32),
                             stage_depths=(1, 1, 1), upsample_channels=8)
        scene_cfg = SceneConfig(
            x_range=(5, 24), y_range=(-10, 10),
            lidar=LidarConfig(channels=8, azimuth_steps=60))
        scene = SceneGenerator(scene_cfg, seed=0).generate(0,
                                                           with_image=False)
        fw = PsAndQs(target_sparsity=0.5, bits=8, iterations=1)
        report = fw.compress(model, *model.example_inputs())
        zero_before = {
            name: (param.data == 0)
            for name, param in report.model.named_parameters()
            if name.endswith("weight") and name[:-7] in report.masks}
        fw.finetune(report, [scene], epochs=1, lr=1e-3)
        for name, zeros in zero_before.items():
            weights = dict(report.model.named_parameters())[name].data
            assert (weights[zeros] == 0).all(), f"{name} regrew weights"
