"""Tests for the deployment runtime and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.core import UPAQCompressor, hck_config, pack_model
from repro.hardware import default_devices
from repro.models import PointPillars
from repro.pointcloud import LidarConfig, SceneConfig, SceneGenerator
from repro.pointcloud.voxelize import PillarConfig
from repro.runtime import InferenceEngine


def _tiny_pp():
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=0)


@pytest.fixture(scope="module")
def scenes():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    generator = SceneGenerator(cfg, seed=0)
    return [generator.generate(i, with_image=False) for i in range(3)]


class TestInferenceEngine:
    def test_stream_accounting(self, scenes):
        engine = InferenceEngine(_tiny_pp(), default_devices()["jetson"],
                                 deadline_s=0.1)
        report = engine.run(scenes)
        assert report.num_frames == 3
        assert report.mean_latency_s > 0
        assert report.total_energy_j > 0
        assert len(report.predictions) == 3

    def test_deadline_flagging(self, scenes):
        engine = InferenceEngine(_tiny_pp(), default_devices()["jetson"],
                                 deadline_s=1e-9)
        report = engine.run(scenes[:1])
        assert report.deadline_hit_rate == 0.0
        relaxed = InferenceEngine(_tiny_pp(), default_devices()["jetson"],
                                  deadline_s=10.0)
        assert relaxed.run(scenes[:1]).deadline_hit_rate == 1.0

    def test_compressed_model_cheaper(self, scenes):
        model = _tiny_pp()
        base = InferenceEngine(model, default_devices()["jetson"])
        report = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        compressed = InferenceEngine(report.model,
                                     default_devices()["jetson"])
        assert compressed.frame_cost()[0] < base.frame_cost()[0]
        assert compressed.frame_cost()[1] < base.frame_cost()[1]

    def test_from_packed_blob(self, scenes):
        model = _tiny_pp()
        report = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        blob = pack_model(report.model)
        engine = InferenceEngine.from_packed(
            blob, _tiny_pp(), default_devices()["jetson"])
        stream = engine.run(scenes[:1])
        assert stream.num_frames == 1
        # Restored weights carry the compressed sparsity.
        weights = dict(engine.model.named_parameters())
        sparsity = float((weights["backbone.stage1.blocks.0.conv.weight"]
                          .data == 0).mean())
        assert sparsity > 0.5

    def test_evaluate_passthrough(self, scenes):
        engine = InferenceEngine(_tiny_pp(), default_devices()["jetson"])
        report = engine.run(scenes)
        metrics = report.evaluate([s.boxes for s in scenes])
        assert "mAP" in metrics


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["table2", "--model", "smoke",
                                  "--scale", "quick"])
        assert args.model == "smoke"

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_command(self, tmp_path, capsys):
        code = main(["generate", "--frames", "3", "--out",
                     str(tmp_path / "kitti")])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote 3 KITTI-format frames" in out
        assert (tmp_path / "kitti" / "velodyne").exists()

    def test_sensitivity_command(self, capsys, monkeypatch):
        import repro.models.registry as registry
        monkeypatch.setitem(registry.MODEL_REGISTRY, "tinypp",
                            lambda **kw: _tiny_pp())
        code = main(["sensitivity", "--model", "tinypp"])
        assert code == 0
        out = capsys.readouterr().out
        assert "err@4b" in out
        assert "pfn.conv" in out

    def test_table1_command(self, capsys):
        code = main(["table1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PointPillars" in out
        assert "VSC" in out

    def test_stream_command_with_faults(self, capsys, monkeypatch):
        import repro.models.registry as registry
        monkeypatch.setitem(registry.MODEL_REGISTRY, "tinypp",
                            lambda **kw: _tiny_pp())
        code = main(["stream", "--model", "tinypp", "--frames", "6",
                     "--inject-faults", "--drop-rate", "0.3",
                     "--corrupt-rate", "0.2", "--fault-seed", "1",
                     "--jitter-ms", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stream: 6 frames" in out
        assert "deadline hit rate" in out

    def test_stream_command_clean_run(self, capsys, monkeypatch):
        import repro.models.registry as registry
        monkeypatch.setitem(registry.MODEL_REGISTRY, "tinypp",
                            lambda **kw: _tiny_pp())
        code = main(["stream", "--model", "tinypp", "--frames", "2",
                     "--deadline-ms", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 ok, 0 degraded, 0 dropped" in out
        assert "deadline hit rate 100%" in out

    def test_stream_parser_defaults(self):
        args = build_parser().parse_args(["stream"])
        assert args.frames == 12
        assert not args.inject_faults
        assert args.on_corrupt == "last_good"
        assert args.fallback_model == "none"


class TestIrDumpCLI:
    """`repro ir dump <model>` prints the extracted ModelIR as JSON."""

    def test_dump_prints_parseable_ir_json(self, capsys, monkeypatch):
        import json

        import repro.models.registry as registry
        monkeypatch.setitem(registry.MODEL_REGISTRY, "pointpillars",
                            lambda **kw: _tiny_pp())
        assert main(["ir", "dump", "pointpillars", "--compact"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["model_name"]
        names = [node["name"] for node in record["nodes"]]
        assert names and len(set(names)) == len(names)
        for node in record["nodes"]:
            assert node["kind"] in ("conv", "deconv", "linear")
            assert "profile" in node
            assert node["compression"]["scheme"] == "dense"
        assert any(node["predecessors"] for node in record["nodes"])

    def test_dump_with_preset_shows_compression(self, capsys,
                                                monkeypatch):
        import json

        import repro.models.registry as registry
        monkeypatch.setitem(registry.MODEL_REGISTRY, "pointpillars",
                            lambda **kw: _tiny_pp())
        assert main(["ir", "dump", "pointpillars", "--preset", "hck",
                     "--compact"]) == 0
        record = json.loads(capsys.readouterr().out)
        schemes = {node["compression"]["scheme"]
                   for node in record["nodes"]}
        assert schemes - {"dense"}      # the preset compressed something

    def test_ir_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ir"])
