"""The seeded fault injector: determinism, schedules, and scene effects."""

import numpy as np
import pytest

from repro.pointcloud import LidarConfig, SceneConfig, SceneGenerator
from repro.runtime import FaultInjector, FaultSpec


@pytest.fixture(scope="module")
def scenes():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    generator = SceneGenerator(cfg, seed=0)
    return [generator.generate(i, with_image=False) for i in range(8)]


class TestFaultSpec:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(corrupt_rate=-0.1)
        with pytest.raises(ValueError):
            FaultSpec(jitter="cauchy")
        with pytest.raises(ValueError):
            FaultSpec(jitter_scale_s=-1.0)


class TestDeterminism:
    def test_schedule_is_pure_in_frame_id(self):
        spec = FaultSpec(drop_rate=0.3, corrupt_rate=0.3,
                         jitter="lognormal", jitter_scale_s=0.01, seed=4)
        injector = FaultInjector(spec)
        forward = injector.schedule(range(50))
        backward = [injector.faults_for(i) for i in reversed(range(50))]
        assert forward == list(reversed(backward))

    def test_two_injectors_same_seed_agree(self):
        spec = FaultSpec(drop_rate=0.2, corrupt_rate=0.1,
                         jitter="uniform", jitter_scale_s=0.005, seed=9)
        assert FaultInjector(spec).schedule(range(100)) \
            == FaultInjector(spec).schedule(range(100))

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultSpec(drop_rate=0.5, seed=0))
        b = FaultInjector(FaultSpec(drop_rate=0.5, seed=1))
        assert a.schedule(range(200)) != b.schedule(range(200))

    def test_drop_and_corrupt_are_exclusive(self):
        injector = FaultInjector(FaultSpec(drop_rate=0.5, corrupt_rate=0.9,
                                           seed=2))
        for faults in injector.schedule(range(300)):
            assert not (faults.dropped and faults.corrupted)

    def test_rates_roughly_respected(self):
        injector = FaultInjector(FaultSpec(drop_rate=0.1, corrupt_rate=0.05,
                                           seed=3))
        schedule = injector.schedule(range(2000))
        drop = np.mean([f.dropped for f in schedule])
        corrupt = np.mean([f.corrupted for f in schedule])
        assert abs(drop - 0.1) < 0.03
        assert abs(corrupt - 0.05) < 0.03


class TestSceneEffects:
    def test_dropped_frame_becomes_none(self, scenes):
        injector = FaultInjector(FaultSpec(drop_rate=1.0, seed=0))
        assert injector.apply(scenes[0]) is None

    def test_corruption_injects_nan_without_mutating_input(self, scenes):
        injector = FaultInjector(FaultSpec(corrupt_rate=1.0,
                                           nan_fraction=0.1, seed=0))
        original = scenes[0].points.copy()
        poisoned = injector.apply(scenes[0])
        assert poisoned is not scenes[0]
        np.testing.assert_array_equal(scenes[0].points, original)
        bad_rows = np.isnan(poisoned.points).any(axis=1)
        expected = int(round(0.1 * len(original)))
        assert bad_rows.sum() == expected

    def test_corruption_is_deterministic(self, scenes):
        spec = FaultSpec(corrupt_rate=1.0, nan_fraction=0.2, seed=5)
        a = FaultInjector(spec).apply(scenes[1])
        b = FaultInjector(spec).apply(scenes[1])
        np.testing.assert_array_equal(a.points, b.points)

    def test_clean_frame_passes_through_unchanged(self, scenes):
        injector = FaultInjector(FaultSpec(seed=0))
        assert injector.apply(scenes[0]) is scenes[0]

    def test_empty_cloud_corruption_is_noop(self):
        injector = FaultInjector(FaultSpec(corrupt_rate=1.0, seed=0))
        empty = np.zeros((0, 4), dtype=np.float32)
        assert injector.corrupt_points(empty, 0).size == 0


class TestNanFractionBoundaries:
    """``nan_fraction`` rounds to a poison count; it never floors to 1.

    Regression: ``max(1, round(...))`` used to poison one point even at
    ``nan_fraction=0.0``, so a spec that promised clean payloads lied.
    """

    def test_zero_fraction_poisons_nothing(self):
        injector = FaultInjector(FaultSpec(corrupt_rate=1.0,
                                           nan_fraction=0.0, seed=0))
        points = np.ones((100, 4), dtype=np.float32)
        poisoned = injector.corrupt_points(points, frame_id=0)
        assert not np.isnan(poisoned).any()
        np.testing.assert_array_equal(poisoned, points)

    def test_fraction_rounding_to_zero_poisons_nothing(self):
        # 0.004 * 100 = 0.4 → rounds to 0 points.
        injector = FaultInjector(FaultSpec(corrupt_rate=1.0,
                                           nan_fraction=0.004, seed=0))
        points = np.ones((100, 4), dtype=np.float32)
        assert not np.isnan(injector.corrupt_points(points, 0)).any()

    def test_fraction_rounding_up_poisons_exactly_that_many(self):
        # 0.006 * 100 = 0.6 → rounds to 1 point.
        injector = FaultInjector(FaultSpec(corrupt_rate=1.0,
                                           nan_fraction=0.006, seed=0))
        points = np.ones((100, 4), dtype=np.float32)
        poisoned = injector.corrupt_points(points, 0)
        assert np.isnan(poisoned).any(axis=1).sum() == 1

    def test_full_fraction_poisons_everything(self):
        injector = FaultInjector(FaultSpec(corrupt_rate=1.0,
                                           nan_fraction=1.0, seed=0))
        points = np.ones((25, 4), dtype=np.float32)
        poisoned = injector.corrupt_points(points, 0)
        assert np.isnan(poisoned).any(axis=1).all()
