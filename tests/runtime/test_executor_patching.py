"""Regression tests for LoweredProgram's forward patching.

Two bugs are pinned here:

* restore order — when two IR names resolve to the *same* shared
  module, the second patch captures the first ``routed`` as its
  "original"; restoring in insertion order left the module permanently
  patched (same shape as the TiedLeafNet dedup fix in the search).
* argument forwarding — ``routed`` used to silently discard extra
  positional args and all kwargs, changing the patched layer's call
  semantics instead of failing loudly.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn.graph import layer_map
from repro.nn.quantized import QuantizedConv2d, activation_scale
from repro.nn.tensor import Tensor
from repro.runtime import LoweredProgram


class SharedConvNet(nn.Module):
    """One Conv2d object reachable under two attribute names.

    ``layer_map`` (which walks ``named_modules``) hands back *both*
    names mapped to the same module — exactly what happens when an IR
    carries two nodes that a weight-tied model implements with one
    shared layer object.
    """

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(7)
        conv = nn.Conv2d(3, 3, 3, padding=1, rng=rng)
        self.trunk = conv
        self.alias = conv

    def forward(self, x):
        return self.alias(self.trunk(x))


def _input(shape=(1, 3, 6, 6), seed=0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape).astype(np.float32))


def _program_for(model):
    layers = layer_map(model)
    x = _input()
    executors = {
        name: QuantizedConv2d.from_float(
            module, activation_scale(x.data), weight_bits=8)
        for name, module in layers.items()}
    return layers, LoweredProgram(executors)


class TestSharedModuleRestore:
    def test_two_names_one_module(self):
        model = SharedConvNet()
        layers = layer_map(model)
        assert layers["trunk"] is layers["alias"]

    @staticmethod
    def _runs_class_forward(module) -> bool:
        """True iff calling ``module.forward`` runs ``Conv2d.forward``.

        Identity on the bound-method *object* is too strict (every
        attribute access builds a fresh bound method); what must hold
        after detach is that the attribute resolves back to the class's
        forward — not to a leaked ``routed`` wrapper, which is a plain
        function with no ``__func__``.
        """
        return getattr(module.forward, "__func__", None) \
            is nn.Conv2d.forward

    def test_restore_order_with_shared_module(self):
        """The headline regression: a module patched under two names
        must come back with its true original forward, not the first
        patch's ``routed`` wrapper."""
        model = SharedConvNet()
        layers, program = _program_for(model)
        conv = layers["trunk"]
        assert self._runs_class_forward(conv)
        with program.attached(model):
            assert not self._runs_class_forward(conv)
        assert self._runs_class_forward(conv)

    def test_restore_order_on_exception(self):
        model = SharedConvNet()
        layers, program = _program_for(model)
        conv = layers["trunk"]
        with pytest.raises(RuntimeError):
            with program.attached(model):
                raise RuntimeError("inference blew up")
        assert self._runs_class_forward(conv)

    def test_repeated_attach_stays_reversible(self):
        """Attach/detach twice — a leaked patch would compound."""
        model = SharedConvNet()
        layers, program = _program_for(model)
        conv = layers["trunk"]
        for _ in range(2):
            with program.attached(model):
                pass
            assert self._runs_class_forward(conv)

    def test_model_output_unchanged_after_detach(self):
        model = SharedConvNet()
        model.eval()
        x = _input()
        before = model.forward(x).data.copy()
        _, program = _program_for(model)
        with program.attached(model):
            model.forward(x)
        after = model.forward(x).data
        np.testing.assert_array_equal(before, after)


class TestRoutedArgumentForwarding:
    def test_single_positional_still_works(self):
        model = SharedConvNet()
        layers, program = _program_for(model)
        with program.attached(model):
            out = layers["trunk"].forward(_input())
        assert out.data.shape == (1, 3, 6, 6)

    def test_unexpected_kwarg_raises(self):
        """Kwargs are forwarded to the executor, which rejects ones it
        does not understand — the old code silently swallowed them."""
        model = SharedConvNet()
        layers, program = _program_for(model)
        with program.attached(model):
            with pytest.raises(TypeError):
                layers["trunk"].forward(_input(), training=True)

    def test_extra_positional_raises(self):
        model = SharedConvNet()
        layers, program = _program_for(model)
        with program.attached(model):
            with pytest.raises(TypeError):
                layers["trunk"].forward(_input(), _input())
