"""Telemetry invariants for the integer executors.

Pinned here:

* skipped-column counts equal the all-zero columns each of Algorithm
  2's four pattern families implies, at 4/8/16-bit weights;
* the saturation rate is exactly 0 when the calibration scale covers
  the input range, and positive when it does not;
* attaching counters never perturbs an output bit — forward and
  reference stay bit-for-bit identical with telemetry on, and both
  modes report identical counters;
* MAC counts and accumulator extrema match an independent recompute,
  and the accumulator headroom certifies the 2^53 exactness bound.
"""

import math

import numpy as np
import pytest

from repro import nn
from repro.core.patterns import PATTERN_TYPES, generate_pattern
from repro.nn.quantized import (QuantizedConv2d, QuantizedConvTranspose2d,
                                QuantizedLinear, activation_scale,
                                quantize_activation)
from repro.nn.tensor import Tensor
from repro.runtime.telemetry import (ACC_EXACT_BITS, LayerTelemetry,
                                     aggregate_telemetry)

BITS = (4, 8, 16)
KERNEL = 3
N_NONZERO = 2


def _signed_magnitudes(rng, shape):
    """Weights with |w| in [0.5, 1]: no nonzero position can quantize
    to a zero code even at 4 bits, so the all-zero columns are exactly
    the mask's zeros."""
    signs = np.where(rng.random(shape) < 0.5, -1.0, 1.0)
    return (rng.uniform(0.5, 1.0, shape) * signs).astype(np.float32)


def _channel_masks(pattern_type, channels, rng):
    """One pattern per channel, shared by every kernel of that channel."""
    masks = [generate_pattern(N_NONZERO, KERNEL, rng,
                              pattern_type=pattern_type).mask()
             for _ in range(channels)]
    return np.stack(masks)                      # (channels, k, k)


def _input(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(shape).astype(np.float32)


def _patterned_conv(pattern_type, rng, in_c=3, out_c=4):
    conv = nn.Conv2d(in_c, out_c, KERNEL, padding=1, rng=rng)
    masks = _channel_masks(pattern_type, in_c, rng)     # (in_c, k, k)
    conv.weight.data = _signed_magnitudes(
        rng, conv.weight.data.shape) * masks[None]
    expected_skipped = int((masks == 0).sum())
    return conv, expected_skipped, in_c * KERNEL * KERNEL


def _patterned_deconv(pattern_type, rng, in_c=3, out_c=4):
    deconv = nn.ConvTranspose2d(in_c, out_c, KERNEL, stride=2,
                                padding=1, rng=rng)
    # Scatter columns are (out-channel, ki, kj): share one pattern per
    # *output* channel across every input channel.
    masks = _channel_masks(pattern_type, out_c, rng)     # (out_c, k, k)
    deconv.weight.data = _signed_magnitudes(
        rng, deconv.weight.data.shape) * masks[None]     # (in, out, k, k)
    expected_skipped = int((masks == 0).sum())
    return deconv, expected_skipped, out_c * KERNEL * KERNEL


@pytest.mark.parametrize("bits", BITS)
@pytest.mark.parametrize("pattern_type", PATTERN_TYPES)
class TestPatternSkipCounts:
    """Skipped columns == the zeros each pattern family implies."""

    def test_conv_skip_count(self, pattern_type, bits):
        rng = np.random.default_rng(hash((pattern_type, bits)) % 2**32)
        conv, expected_skipped, total = _patterned_conv(pattern_type, rng)
        x = _input((2, 3, 6, 6))
        q = QuantizedConv2d.from_float(
            conv, activation_scale(x, max(8, bits)), weight_bits=bits,
            activation_bits=max(8, bits))
        telemetry = LayerTelemetry(layer="conv")
        q.telemetry = telemetry
        q.forward(Tensor(x))
        # Column counters are per frame; the (batch 2) call records 2x.
        assert telemetry.columns_total == 2 * total
        assert telemetry.columns_skipped == 2 * expected_skipped
        assert telemetry.skip_rate == expected_skipped / total

    def test_deconv_skip_count(self, pattern_type, bits):
        rng = np.random.default_rng(hash((pattern_type, bits, 1)) % 2**32)
        deconv, expected_skipped, total = _patterned_deconv(
            pattern_type, rng)
        x = _input((2, 3, 5, 5))
        q = QuantizedConvTranspose2d.from_float(
            deconv, activation_scale(x, max(8, bits)), weight_bits=bits,
            activation_bits=max(8, bits))
        telemetry = LayerTelemetry(layer="deconv")
        q.telemetry = telemetry
        q.forward(Tensor(x))
        assert telemetry.columns_total == 2 * total
        assert telemetry.columns_skipped == 2 * expected_skipped


@pytest.mark.parametrize("bits", BITS)
class TestLinearSkipCounts:
    """Linear skipping is per input feature: zeroed weight columns."""

    def test_linear_skip_count(self, bits):
        rng = np.random.default_rng(bits)
        linear = nn.Linear(10, 6, rng=rng)
        weights = _signed_magnitudes(rng, linear.weight.data.shape)
        weights[:, [1, 4, 7]] = 0.0             # prune 3 input features
        linear.weight.data = weights
        x = _input((5, 10))
        q = QuantizedLinear.from_float(
            linear, activation_scale(x, max(8, bits)), weight_bits=bits,
            activation_bits=max(8, bits))
        telemetry = LayerTelemetry(layer="linear")
        q.telemetry = telemetry
        q.forward(Tensor(x))
        assert telemetry.columns_total == 10
        assert telemetry.columns_skipped == 3
        assert telemetry.macs == 5 * 7 * 6


class TestSaturation:
    def test_zero_saturation_when_calibrated(self):
        """A max-calibrated scale covers the whole input range."""
        x = _input((2, 3, 6, 6), seed=3)
        rng = np.random.default_rng(0)
        conv, _, _ = _patterned_conv("row", rng)
        q = QuantizedConv2d.from_float(conv, activation_scale(x),
                                       weight_bits=8)
        telemetry = LayerTelemetry()
        q.telemetry = telemetry
        q.forward(Tensor(x))
        assert telemetry.activations_total == x.size
        assert telemetry.activations_saturated == 0
        assert telemetry.saturation_rate == 0.0

    def test_undersized_scale_saturates(self):
        x = _input((2, 3, 6, 6), seed=3)
        rng = np.random.default_rng(0)
        conv, _, _ = _patterned_conv("row", rng)
        q = QuantizedConv2d.from_float(conv, activation_scale(x) / 4,
                                       weight_bits=8)
        telemetry = LayerTelemetry()
        q.telemetry = telemetry
        q.forward(Tensor(x))
        assert telemetry.activations_saturated > 0
        assert 0.0 < telemetry.saturation_rate <= 1.0

    def test_quantize_activation_counts_without_perturbing(self):
        x = _input((4, 7), seed=9)
        scale = activation_scale(x) / 3
        telemetry = LayerTelemetry()
        counted = quantize_activation(x, scale, telemetry=telemetry)
        plain = quantize_activation(x, scale)
        np.testing.assert_array_equal(counted, plain)
        expected = int((np.abs(np.round(x / scale)) > 127).sum())
        assert telemetry.activations_saturated == expected


class TestCountersDoNotPerturb:
    """The hard guarantee: telemetry is observation-only."""

    @pytest.mark.parametrize("bits", BITS)
    def test_outputs_bit_identical_with_and_without(self, bits):
        rng = np.random.default_rng(bits + 17)
        conv, _, _ = _patterned_conv("main_diagonal", rng)
        x = Tensor(_input((2, 3, 6, 6)))
        q = QuantizedConv2d.from_float(
            conv, activation_scale(x.data, max(8, bits)),
            weight_bits=bits, activation_bits=max(8, bits))
        bare_fwd = q.forward(x).data
        bare_ref = q.reference(x).data
        q.telemetry = LayerTelemetry()
        np.testing.assert_array_equal(q.forward(x).data, bare_fwd)
        np.testing.assert_array_equal(q.reference(x).data, bare_ref)

    def test_both_modes_report_identical_counters(self):
        rng = np.random.default_rng(23)
        conv, _, _ = _patterned_conv("column", rng)
        x = Tensor(_input((1, 3, 6, 6)))
        q = QuantizedConv2d.from_float(conv, activation_scale(x.data),
                                       weight_bits=8)
        fwd_tele = LayerTelemetry()
        q.telemetry = fwd_tele
        q.forward(x)
        ref_tele = LayerTelemetry()
        q.telemetry = ref_tele
        q.reference(x)
        assert fwd_tele == ref_tele


class TestMacsAndAccumulator:
    def test_conv_mac_count_matches_formula(self):
        rng = np.random.default_rng(5)
        conv, expected_skipped, total = _patterned_conv("row", rng)
        x = Tensor(_input((2, 3, 6, 6)))
        q = QuantizedConv2d.from_float(conv, activation_scale(x.data),
                                       weight_bits=8)
        telemetry = LayerTelemetry()
        q.telemetry = telemetry
        q.forward(x)
        kept = total - expected_skipped
        positions = 6 * 6                       # stride 1, padding 1
        assert telemetry.macs == 2 * 4 * kept * positions
        # one batched matmul over 2 frames counts as 2 per-frame calls
        assert telemetry.calls == 2

    def test_accumulator_extrema_match_recompute(self):
        rng = np.random.default_rng(6)
        conv, _, _ = _patterned_conv("anti_diagonal", rng)
        x = Tensor(_input((1, 3, 6, 6)))
        q = QuantizedConv2d.from_float(conv, activation_scale(x.data),
                                       weight_bits=8)
        telemetry = LayerTelemetry()
        q.telemetry = telemetry
        q.forward(x)
        acc = q._accumulate(x.data, np.int64)
        assert telemetry.acc_min == int(acc.min())
        assert telemetry.acc_max == int(acc.max())
        assert telemetry.headroom_bits > 0
        assert telemetry.acc_absmax < 2 ** ACC_EXACT_BITS

    def test_headroom_is_infinite_before_any_call(self):
        telemetry = LayerTelemetry()
        assert math.isinf(telemetry.headroom_bits)
        assert math.isnan(telemetry.skip_rate)
        assert math.isnan(telemetry.saturation_rate)


class TestAggregation:
    def test_merge_and_digest(self):
        a = LayerTelemetry(layer="a")
        a.record_matmul(macs=100, columns_total=10, columns_skipped=4)
        a.record_quantization(50, 5)
        a.record_accumulator(-8, 16)
        b = LayerTelemetry(layer="b")
        b.record_matmul(macs=300, columns_total=10, columns_skipped=2)
        b.record_quantization(50, 0)
        b.record_accumulator(-64, 32)
        agg = aggregate_telemetry({"a": a, "b": b})
        assert agg["layers"] == 2
        assert agg["macs"] == 400
        assert agg["skip_rate"] == 6 / 20
        assert agg["saturation_rate"] == 5 / 100
        assert agg["min_headroom_bits"] == ACC_EXACT_BITS - 6

    def test_snapshot_is_independent(self):
        a = LayerTelemetry(layer="a")
        a.record_matmul(macs=10, columns_total=4, columns_skipped=1)
        snap = a.snapshot()
        a.record_matmul(macs=10, columns_total=4, columns_skipped=1)
        assert snap.macs == 10 and a.macs == 20

    def test_json_round_trip_fields(self):
        a = LayerTelemetry(layer="a")
        a.record_matmul(macs=10, columns_total=4, columns_skipped=1)
        record = a.to_json()
        assert record["layer"] == "a"
        assert record["skip_rate"] == 0.25
        assert record["headroom_bits"] is None  # no accumulation yet
