"""Per-frame cost attribution and deadline-miss ranking.

Acceptance: with ``trace=True`` every processed frame's per-layer
latency (and energy) attributions sum — within float tolerance — to
the frame's recorded ``device_latency_s`` / ``device_energy_j``, even
under cost hooks and injected jitter; ``top_offenders()`` names the
layers behind deadline misses; lowered ≡ reference parity holds with
telemetry and tracing enabled; the ``repro stream --trace`` CLI
exports a well-formed JSON trace.
"""

import json
import math

import numpy as np
import pytest

from repro.cli import main
from repro.core import UPAQCompressor, hck_config
from repro.hardware import default_devices
from repro.models import PointPillars
from repro.pointcloud import LidarConfig, SceneConfig, SceneGenerator
from repro.pointcloud.voxelize import PillarConfig
from repro.runtime import (FaultInjector, FaultSpec, InferenceEngine,
                           StreamReport, export_trace)
from repro.runtime.telemetry import JITTER_LAYER, OVERHEAD_LAYER


def _tiny_pp(seed=1):
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=seed)


@pytest.fixture(scope="module")
def compressed():
    model = _tiny_pp()
    report = UPAQCompressor(hck_config()).compress(
        model, *model.example_inputs())
    report.model.eval()
    return report


@pytest.fixture(scope="module")
def scenes():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    generator = SceneGenerator(cfg, seed=0)
    return [generator.generate(i, with_image=False) for i in range(4)]


@pytest.fixture(scope="module")
def jetson():
    return default_devices()["jetson"]


def _frame_sums(report):
    by_frame = {}
    for event in report.trace:
        lat, energy = by_frame.get(event.frame_id, (0.0, 0.0))
        by_frame[event.frame_id] = (lat + event.latency_s,
                                    energy + event.energy_j)
    return by_frame


class TestTraceSumsToFrameCost:
    """Conservation must hold for batch_size == 1 and batched windows:
    a batched window's events still sum to each frame's recorded
    ``device_latency_s`` / ``device_energy_j`` exactly."""

    @pytest.mark.parametrize("batch_size", [1, 3])
    def test_plain_stream(self, compressed, scenes, jetson, batch_size):
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered", ir=compressed.ir,
                                 trace=True, batch_size=batch_size)
        report = engine.run(scenes)
        sums = _frame_sums(report)
        assert len(sums) == len(scenes)
        for frame in report.frames:
            lat, energy = sums[frame.frame_id]
            assert np.isclose(lat, frame.device_latency_s, rtol=1e-9)
            assert np.isclose(energy, frame.device_energy_j, rtol=1e-9)

    @pytest.mark.parametrize("batch_size", [1, 3])
    def test_with_cost_hook_and_jitter(self, compressed, scenes, jetson,
                                       batch_size):
        """Attribution follows whatever the hook did to the base cost,
        and injected jitter appears as its own pseudo-event."""
        injector = FaultInjector(FaultSpec(
            jitter="lognormal", jitter_scale_s=0.002, seed=3))
        hook = lambda fid, lat, en: (lat * (1.0 + 0.25 * fid),
                                     en * (1.0 + 0.125 * fid))
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered", ir=compressed.ir,
                                 trace=True, fault_injector=injector,
                                 cost_hook=hook, batch_size=batch_size)
        report = engine.run(scenes)
        sums = _frame_sums(report)
        for frame in report.frames:
            lat, energy = sums[frame.frame_id]
            assert np.isclose(lat, frame.device_latency_s, rtol=1e-9)
            assert np.isclose(energy, frame.device_energy_j, rtol=1e-9)
        jitter_events = [e for e in report.trace if e.kind == "jitter"]
        assert jitter_events
        assert all(e.layer == JITTER_LAYER and e.energy_j == 0.0
                   for e in jitter_events)

    def test_event_layers_come_from_plan(self, compressed, scenes,
                                         jetson):
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered", ir=compressed.ir,
                                 trace=True)
        report = engine.run(scenes[:1])
        plan_names = set(engine.plan.layer_names)
        event_names = {e.layer for e in report.trace}
        assert plan_names <= event_names
        assert event_names - plan_names <= {OVERHEAD_LAYER, JITTER_LAYER}

    def test_trace_off_by_default(self, compressed, scenes, jetson):
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered", ir=compressed.ir)
        report = engine.run(scenes[:1])
        assert report.trace == []
        assert report.telemetry == {}


class TestTopOffenders:
    def test_ranks_missed_frames_only(self, compressed, scenes, jetson):
        # Deadline nobody can make: every processed frame misses.
        engine = InferenceEngine(compressed.model, jetson,
                                 deadline_s=1e-9, execution="lowered",
                                 ir=compressed.ir, trace=True)
        report = engine.run(scenes)
        offenders = report.top_offenders(k=3)
        assert 0 < len(offenders) <= 3
        latencies = [entry.latency_s for entry in offenders]
        assert latencies == sorted(latencies, reverse=True)
        assert all(entry.frames == len(scenes) for entry in offenders)

    def test_empty_when_no_misses(self, compressed, scenes, jetson):
        engine = InferenceEngine(compressed.model, jetson,
                                 deadline_s=10.0, execution="lowered",
                                 ir=compressed.ir, trace=True)
        report = engine.run(scenes[:2])
        assert report.top_offenders() == []
        # ...but the all-frames view still attributes everything.
        assert report.top_offenders(missed_only=False)

    def test_empty_without_trace(self):
        assert StreamReport().top_offenders() == []


class TestParityWithObservability:
    def test_lowered_reference_bit_for_bit(self, compressed, scenes,
                                           jetson):
        """Telemetry + tracing attached on both sides must not cost a
        single output bit of the parity guarantee."""
        def boxes(report):
            return [[(b.x, b.y, b.z, b.dx, b.dy, b.dz, b.yaw, b.label,
                      b.score) for b in p.boxes]
                    for p in report.predictions]
        reference = InferenceEngine(compressed.model, jetson,
                                    execution="reference",
                                    ir=compressed.ir, trace=True,
                                    telemetry=True)
        lowered = InferenceEngine(compressed.model, jetson,
                                  execution="lowered", ir=compressed.ir,
                                  trace=True, telemetry=True)
        ref_report = reference.run(scenes)
        low_report = lowered.run(scenes)
        assert boxes(ref_report) == boxes(low_report)
        # Counters observed identical work on both sides.
        assert set(ref_report.telemetry) == set(low_report.telemetry)
        for name, counter in ref_report.telemetry.items():
            assert counter == low_report.telemetry[name]

    def test_report_carries_snapshots_and_digest(self, compressed,
                                                 scenes, jetson):
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered", ir=compressed.ir,
                                 telemetry=True)
        report = engine.run(scenes[:2])
        assert report.telemetry
        for counter in report.telemetry.values():
            assert counter.calls >= 2           # one per frame
            assert counter.macs > 0
            assert counter.headroom_bits > 0
        assert "telemetry:" in report.summary()
        # Snapshots, not live views: another run must not mutate them.
        frozen = {name: counter.calls
                  for name, counter in report.telemetry.items()}
        engine.run(scenes[:1])
        assert {name: counter.calls
                for name, counter in report.telemetry.items()} == frozen


class TestEmptyStreamStats:
    """mean_latency_s and deadline_hit_rate agree: NaN on empty."""

    def test_both_nan_on_empty_report(self):
        report = StreamReport()
        assert math.isnan(report.mean_latency_s)
        assert math.isnan(report.deadline_hit_rate)

    def test_both_nan_on_fully_dropped_stream(self, jetson, scenes):
        engine = InferenceEngine(
            _tiny_pp(), jetson,
            fault_injector=FaultInjector(FaultSpec(drop_rate=1.0,
                                                   seed=0)))
        report = engine.run(scenes[:3])
        assert report.dropped_frames == 3
        assert math.isnan(report.mean_latency_s)
        assert math.isnan(report.deadline_hit_rate)

    def test_summary_prints_na_for_both(self):
        summary = StreamReport().summary()
        assert "deadline hit rate n/a" in summary
        assert "mean latency n/a" in summary


class TestStreamTraceCLI:
    def test_trace_export(self, tmp_path, capsys, monkeypatch):
        import repro.models.registry as registry
        monkeypatch.setitem(registry.MODEL_REGISTRY, "tinypp",
                            lambda **kw: _tiny_pp())
        out = tmp_path / "trace.json"
        code = main(["stream", "--model", "tinypp", "--frames", "3",
                     "--deadline-ms", "0.0001", "--trace", str(out),
                     "--telemetry"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "trace: " in printed
        assert "deadline-miss attribution:" in printed
        record = json.loads(out.read_text())
        assert len(record["frames"]) == 3
        assert record["events"]
        assert record["top_offenders"]
        # The exported attributions reproduce each frame's cost.
        sums = {}
        for event in record["events"]:
            sums[event["frame_id"]] = sums.get(event["frame_id"], 0.0) \
                + event["latency_s"]
        for frame in record["frames"]:
            assert np.isclose(sums[frame["frame_id"]],
                              frame["device_latency_s"], rtol=1e-9)

    def test_export_trace_roundtrip(self, compressed, scenes, jetson):
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered", ir=compressed.ir,
                                 trace=True, telemetry=True)
        report = engine.run(scenes[:2])
        record = export_trace(report)
        assert json.loads(json.dumps(record)) == record
        assert set(record) >= {"deadline_s", "frames", "events",
                               "top_offenders", "telemetry"}
