"""StreamReport analytics under a mixed ok/degraded/dropped stream.

Drives scenario scenes through an engine with aggressive fault
injection so one report contains every frame status, then exercises
``evaluate``, ``latency_percentile`` and ``top_offenders`` — the
analytics the fuzzing gate aggregates per cell.
"""

import math

import numpy as np
import pytest

from repro.hardware import default_devices
from repro.models import PointPillars
from repro.pointcloud import PillarConfig, make_scenario_scenes
from repro.runtime import (DegradationPolicy, FaultInjector, FaultSpec,
                           InferenceEngine, StreamReport)


@pytest.fixture(scope="module")
def model():
    model = PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=1)
    model.eval()
    return model


@pytest.fixture(scope="module")
def scenes():
    return make_scenario_scenes("dense_traffic", 8, seed=0)


@pytest.fixture(scope="module")
def mixed_report(model, scenes):
    # High rates so 8 frames reliably contain drops and corruptions.
    injector = FaultInjector(FaultSpec(drop_rate=0.35, corrupt_rate=0.35,
                                       nan_fraction=0.5, seed=11))
    engine = InferenceEngine(model, default_devices()["jetson"],
                             deadline_s=0.05,
                             policy=DegradationPolicy(on_corrupt="last_good"),
                             fault_injector=injector, trace=True)
    return engine.run(scenes)


class TestMixedStatuses:
    def test_stream_actually_mixed(self, mixed_report):
        counts = mixed_report.status_counts
        assert counts.get("ok", 0) > 0
        assert counts.get("degraded", 0) > 0
        assert counts.get("dropped", 0) > 0
        assert mixed_report.num_frames == 8

    def test_predictions_align_with_frames(self, mixed_report):
        assert len(mixed_report.predictions) == mixed_report.num_frames
        for record, result in zip(mixed_report.frames,
                                  mixed_report.predictions):
            assert record.num_detections == len(result.boxes)
            if record.status == "dropped":
                assert result.boxes == []

    def test_evaluate_scores_full_stream(self, mixed_report, scenes):
        metrics = mixed_report.evaluate([s.boxes for s in scenes])
        # Dropped frames contribute empty predictions, so the stream
        # mAP is well-defined (GT present) even with drops.
        assert not math.isnan(metrics["mAP"])
        assert 0.0 <= metrics["mAP"] <= 100.0

    def test_evaluate_rejects_misaligned_gt(self, mixed_report, scenes):
        with pytest.raises(ValueError):
            mixed_report.evaluate([s.boxes for s in scenes[:-1]])


class TestLatencyPercentile:
    def test_percentiles_ordered(self, mixed_report):
        p50 = mixed_report.latency_percentile(50)
        p99 = mixed_report.latency_percentile(99)
        assert 0 < p50 <= p99

    def test_only_processed_frames_counted(self, mixed_report):
        # Dropped frames record 0 latency; percentiles must ignore
        # them or p50 would be dragged toward zero.
        latencies = [f.device_latency_s for f in mixed_report.frames
                     if f.status == "ok"]
        assert mixed_report.latency_percentile(100) == pytest.approx(
            max(latencies))
        assert mixed_report.latency_percentile(0) == pytest.approx(
            min(latencies))

    def test_median_matches_numpy(self, mixed_report):
        latencies = [f.device_latency_s for f in mixed_report.frames
                     if f.status == "ok"]
        assert mixed_report.latency_percentile(50) == pytest.approx(
            float(np.percentile(latencies, 50)))

    def test_empty_stream_is_nan(self):
        assert math.isnan(StreamReport().latency_percentile(50))

    @pytest.mark.parametrize("q", [-0.001, -1, 100.001, 150,
                                   float("nan"), float("inf"),
                                   float("-inf")])
    def test_out_of_range_q_raises(self, mixed_report, q):
        # Silent extrapolation would report a latency no frame ever
        # had; NaN q is rejected by the same comparison.
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            mixed_report.latency_percentile(q)

    def test_out_of_range_q_raises_even_on_empty_stream(self):
        # Argument validation precedes the empty-stream NaN path.
        with pytest.raises(ValueError):
            StreamReport().latency_percentile(-5)

    def test_boundaries_are_valid(self, mixed_report):
        # q=0 and q=100 are legitimate (min/max), not out-of-range.
        assert mixed_report.latency_percentile(0) <= \
            mixed_report.latency_percentile(100)

    def test_summary_renders_nan_percentiles_as_na(self):
        # Empty stream: p50/p99 render "n/a" like the other counters,
        # not "nan ms".
        text = StreamReport().summary()
        assert "p50/p99 latency n/a/n/a" in text
        assert "nan" not in text

    def test_summary_renders_real_percentiles(self, mixed_report):
        text = mixed_report.summary()
        p50 = mixed_report.latency_percentile(50)
        assert f"p50/p99 latency {p50 * 1e3:.3f} ms" in text

    def test_all_dropped_is_nan(self, model, scenes):
        injector = FaultInjector(FaultSpec(drop_rate=1.0, seed=0))
        engine = InferenceEngine(model, default_devices()["jetson"],
                                 deadline_s=0.05, fault_injector=injector)
        report = engine.run(scenes[:3])
        assert report.dropped_frames == 3
        assert math.isnan(report.latency_percentile(50))
        assert math.isnan(report.deadline_hit_rate)
        # All-dropped still evaluates: every prediction is empty, GT
        # is present, so detection quality is a hard 0 — not NaN.
        metrics = report.evaluate([s.boxes for s in scenes[:3]])
        assert metrics["mAP"] == 0.0


class TestTopOffenders:
    def test_missed_only_empty_when_deadline_generous(self, mixed_report):
        # 50 ms deadline is never missed by the tiny model.
        assert mixed_report.top_offenders(missed_only=True) == []

    def test_all_frames_attribution(self, mixed_report):
        offenders = mixed_report.top_offenders(k=3, missed_only=False)
        assert 0 < len(offenders) <= 3
        # Sorted by descending latency share.
        latencies = [o.latency_s for o in offenders]
        assert latencies == sorted(latencies, reverse=True)

    def test_impossible_deadline_blames_layers(self, model, scenes):
        engine = InferenceEngine(model, default_devices()["jetson"],
                                 deadline_s=1e-9, trace=True)
        report = engine.run(scenes[:3])
        assert report.deadline_hit_rate == 0.0
        offenders = report.top_offenders(k=5, missed_only=True)
        assert offenders
