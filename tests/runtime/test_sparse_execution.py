"""Sparse lowered execution ≡ dense lowered execution, bit for bit.

The occupancy seam's contract: ``execution="lowered-sparse"`` runs the
same integer executors under a per-frame
:class:`~repro.nn.occupancy.OccupancyContext`, skipping verified
all-zero columns and windows — and every output byte must match the
dense ``"lowered"`` mode anyway.  The suite pins that across bitwidths
(4/8/16), executor kinds (conv/deconv/linear), batch sizes (1/2/5),
the deferred-quantization fast path, the empty-frame boundary, the
watchdog fallback and ladder swaps, and asserts the new dynamic-skip
and occupancy telemetry counters actually move.
"""

import dataclasses

import numpy as np
import pytest

from repro import nn
from repro.core import UPAQCompressor, hck_config
from repro.hardware import default_devices
from repro.models import PointPillars
from repro.nn import Tensor
from repro.nn.occupancy import (OccupancyContext, activate_occupancy,
                                current_occupancy)
from repro.nn.quantized import (QuantizedConv2d, QuantizedConvTranspose2d,
                                QuantizedLinear, activation_scale)
from repro.pointcloud import make_scenario_scenes
from repro.runtime import DegradationPolicy, InferenceEngine
from repro.runtime.telemetry import LayerTelemetry, aggregate_telemetry

from tests.models.conftest import TINY_PILLARS

BITWIDTHS = (4, 8, 16)
BATCH_SIZES = (1, 2, 5)


def _sparse_frames(kind, rng, count=5):
    """Frames whose spatial support is a small cluster — zero outside."""
    frames = []
    for _ in range(count):
        if kind == "linear":
            data = np.zeros((1, 6, 18), dtype=np.float32)
            rows = rng.integers(0, 6, size=2)
            data[0, rows] = rng.standard_normal((2, 18)).astype(np.float32)
        else:
            data = np.zeros((1, 2, 12, 12), dtype=np.float32)
            r0, c0 = rng.integers(0, 8, size=2)
            data[0, :, r0:r0 + 3, c0:c0 + 3] = rng.standard_normal(
                (2, 3, 3)).astype(np.float32)
        frames.append(Tensor(data))
    return frames


def _make_executor(kind, bits, rng):
    act_bits = max(8, bits)
    frames = _sparse_frames(kind, rng)
    scale = activation_scale(
        np.concatenate([f.data for f in frames]), act_bits)
    if kind == "conv":
        layer = nn.Conv2d(2, 4, 3, padding=1, rng=np.random.default_rng(1))
        executor = QuantizedConv2d.from_float(
            layer, scale, weight_bits=bits, activation_bits=act_bits)
    elif kind == "deconv":
        layer = nn.ConvTranspose2d(2, 3, 3, stride=2, padding=1,
                                   rng=np.random.default_rng(2))
        executor = QuantizedConvTranspose2d.from_float(
            layer, scale, weight_bits=bits, activation_bits=act_bits)
    else:
        layer = nn.Linear(18, 5, rng=np.random.default_rng(3))
        executor = QuantizedLinear.from_float(
            layer, scale, weight_bits=bits, activation_bits=act_bits)
    return executor, frames


def _stack(frames):
    return Tensor(np.concatenate([f.data for f in frames], axis=0))


@pytest.fixture(autouse=True)
def _engage_dynamic_paths(monkeypatch):
    """Drop the profitability floor so every layer size exercises the
    dynamic machinery — the parity contract must hold regardless of
    whether a given layer would engage it for speed."""
    monkeypatch.setattr("repro.nn.quantized._MIN_DYNAMIC_WORK", 0)


@pytest.mark.parametrize("batch", BATCH_SIZES)
@pytest.mark.parametrize("kind", ["conv", "deconv", "linear"])
@pytest.mark.parametrize("bits", BITWIDTHS)
class TestExecutorParity:
    """forward/reference under an occupancy context ≡ without one."""

    def test_sparse_matches_dense_bytes(self, bits, kind, batch):
        rng = np.random.default_rng(hash((kind, bits)) % 2 ** 32)
        executor, frames = _make_executor(kind, bits, rng)
        batched = _stack(frames[:batch])
        for run in (executor.forward, executor.reference):
            dense = run(batched).data
            with activate_occupancy():
                sparse = run(batched).data
            assert dense.shape == sparse.shape
            assert dense.tobytes() == sparse.tobytes()

    def test_deferred_quantization_path_matches(self, bits, kind, batch):
        # Without telemetry the conv executor defers quantization onto
        # the gathered columns; with telemetry it quantizes eagerly.
        # Both must agree with dense to the byte.
        rng = np.random.default_rng(hash((kind, bits, "defer")) % 2 ** 32)
        executor, frames = _make_executor(kind, bits, rng)
        batched = _stack(frames[:batch])
        dense = executor.forward(batched).data
        with activate_occupancy():
            deferred = executor.forward(batched).data
        executor.telemetry = LayerTelemetry(layer="probe")
        with activate_occupancy():
            eager = executor.forward(batched).data
        assert dense.tobytes() == deferred.tobytes() == eager.tobytes()

    def test_all_zero_input_reconstructs_exactly(self, bits, kind, batch):
        rng = np.random.default_rng(hash((kind, bits, "zero")) % 2 ** 32)
        executor, frames = _make_executor(kind, bits, rng)
        zero = Tensor(np.zeros_like(_stack(frames[:batch]).data))
        dense = executor.forward(zero).data
        with activate_occupancy():
            sparse = executor.forward(zero).data
        assert dense.tobytes() == sparse.tobytes()


class TestDynamicCounters:
    def test_conv_counts_dynamic_skips_separately(self):
        rng = np.random.default_rng(11)
        executor, frames = _make_executor("conv", 8, rng)
        telemetry = LayerTelemetry(layer="conv")
        executor.telemetry = telemetry
        executor.forward(frames[0])
        # Dense mode: pattern counters move, dynamic counters do not.
        assert telemetry.columns_total > 0
        assert telemetry.dynamic_columns_total == 0
        pattern_skipped = telemetry.columns_skipped
        with activate_occupancy():
            executor.forward(frames[0])
        assert telemetry.dynamic_columns_total > 0
        assert telemetry.dynamic_columns_skipped > 0
        # Pattern counters keep their original meaning.
        assert telemetry.columns_skipped == 2 * pattern_skipped
        assert 0.0 < telemetry.dynamic_skip_rate <= 1.0

    def test_occupancy_counters_flow_from_context(self):
        rng = np.random.default_rng(12)
        executor, frames = _make_executor("conv", 8, rng)
        telemetry = LayerTelemetry(layer="conv")
        executor.telemetry = telemetry
        context = OccupancyContext()
        context.observe(np.array([[0, 0], [1, 2]]), (8, 8))
        with activate_occupancy(context):
            executor.forward(frames[0])
        assert telemetry.canvas_cells_total == 64
        assert telemetry.canvas_cells_occupied == 2
        assert telemetry.occupied_fraction == 2 / 64
        summary = aggregate_telemetry({"conv": telemetry})
        assert summary["occupied_fraction"] == 2 / 64
        assert 0.0 < summary["dynamic_skip_rate"] <= 1.0


# ---------------------------------------------------------------------------
# Engine-level parity on real scenario streams
# ---------------------------------------------------------------------------

def _tiny_pp(seed=1):
    return PointPillars(seed=seed, **TINY_PILLARS)


@pytest.fixture(scope="module")
def compressed():
    model = _tiny_pp(seed=1)
    report = UPAQCompressor(hck_config()).compress(
        model, *model.example_inputs())
    report.model.eval()
    return report


@pytest.fixture(scope="module")
def scenes():
    return make_scenario_scenes("far_sparse", 5, seed=3)


@pytest.fixture(scope="module")
def jetson():
    return default_devices()["jetson"]


def _box_tuples(result):
    return [(b.x, b.y, b.z, b.dx, b.dy, b.dz, b.yaw, b.label, b.score)
            for b in result.boxes]


def _empty_scene(scene):
    points = np.asarray(scene.points)
    return dataclasses.replace(
        scene, points=np.zeros((0, points.shape[1]), dtype=points.dtype))


class TestEngineParity:
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_stream_matches_lowered_bit_for_bit(self, compressed, scenes,
                                                jetson, batch):
        def run(mode):
            engine = InferenceEngine(compressed.model, jetson,
                                     execution=mode, ir=compressed.ir,
                                     batch_size=batch)
            return engine.run(scenes)
        dense = run("lowered")
        sparse = run("lowered-sparse")
        assert len(sparse.predictions) == len(scenes)
        for d, s in zip(dense.predictions, sparse.predictions):
            assert _box_tuples(s) == _box_tuples(d)

    def test_sensor_dropout_stream_parity(self, compressed, jetson):
        scenes = make_scenario_scenes("sensor_dropout", 4, seed=5)
        def run(mode):
            return InferenceEngine(compressed.model, jetson,
                                   execution=mode,
                                   ir=compressed.ir).run(scenes)
        for d, s in zip(run("lowered").predictions,
                        run("lowered-sparse").predictions):
            assert _box_tuples(s) == _box_tuples(d)

    def test_sparse_mode_installs_occupancy_context(self, compressed,
                                                    jetson):
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered-sparse",
                                 ir=compressed.ir)
        seen = {}
        with engine.program.attached(compressed.model):
            seen["inside"] = current_occupancy()
        assert seen["inside"] is not None
        assert current_occupancy() is None

    def test_dynamic_counters_move_on_real_stream(self, compressed,
                                                  scenes, jetson):
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered-sparse",
                                 ir=compressed.ir, telemetry=True)
        report = engine.run(scenes)
        counters = list(report.telemetry.values())
        assert sum(t.dynamic_columns_total for t in counters) > 0
        assert sum(t.dynamic_columns_skipped for t in counters) > 0
        summary = aggregate_telemetry(report.telemetry)
        assert 0.0 < summary["dynamic_skip_rate"] < 1.0
        assert 0.0 < summary["occupied_fraction"] < 1.0
        # Pattern skips stay a separate axis with their own rate.
        assert sum(t.columns_skipped for t in counters) > 0
        assert summary["pattern_skip_rate"] != summary["dynamic_skip_rate"]

    def test_dense_stream_leaves_dynamic_counters_empty(self, compressed,
                                                        scenes, jetson):
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered",
                                 ir=compressed.ir, telemetry=True)
        report = engine.run(scenes)
        counters = list(report.telemetry.values())
        assert sum(t.dynamic_columns_total for t in counters) == 0
        assert sum(t.canvas_cells_total for t in counters) == 0
        summary = aggregate_telemetry(report.telemetry)
        assert np.isnan(summary["dynamic_skip_rate"])
        assert np.isnan(summary["occupied_fraction"])


class TestEmptyFrameBoundary:
    """An all-zero canvas must yield a valid all-background prediction —
    never a degenerate 0×0 plan — and stay bit-identical to dense."""

    def test_empty_scene_predicts_in_every_mode(self, compressed, scenes,
                                                jetson):
        empty = _empty_scene(scenes[0])
        outputs = {}
        for mode in ("reference", "lowered", "lowered-sparse"):
            engine = InferenceEngine(compressed.model, jetson,
                                     execution=mode, ir=compressed.ir)
            result = engine._predict(empty)
            assert result.boxes is not None
            outputs[mode] = _box_tuples(result)
        assert outputs["lowered-sparse"] == outputs["lowered"]
        assert outputs["lowered"] == outputs["reference"]

    def test_empty_scene_inside_batched_window(self, compressed, scenes,
                                               jetson):
        window = [scenes[0], _empty_scene(scenes[1]), scenes[2]]
        def run(mode):
            engine = InferenceEngine(compressed.model, jetson,
                                     execution=mode, ir=compressed.ir,
                                     batch_size=3)
            return engine._predict_window(window)
        dense = run("lowered")
        sparse = run("lowered-sparse")
        assert [len(r.boxes) for r in sparse] \
            == [len(r.boxes) for r in dense]
        for d, s in zip(dense, sparse):
            assert _box_tuples(s) == _box_tuples(d)

    def test_scatter_reports_empty_canvas(self, compressed, scenes):
        empty = _empty_scene(scenes[0])
        with activate_occupancy() as context:
            compressed.model.predict(empty)
            assert context.observed
            assert context.is_empty
            assert context.occupied_cells == 0


class TestFallbackAndLadderInteraction:
    def test_watchdog_fallback_parity(self, compressed, scenes, jetson):
        # An impossible deadline arms the watchdog mid-stream; the swap
        # must not disturb sparse/dense parity on any frame.
        fallback = _tiny_pp(seed=2)
        fb = UPAQCompressor(hck_config()).compress(
            fallback, *fallback.example_inputs())
        fb.model.eval()
        def run(mode):
            engine = InferenceEngine(
                compressed.model, jetson, deadline_s=1e-9,
                policy=DegradationPolicy(max_consecutive_misses=2),
                fallback_model=fb.model, execution=mode,
                ir=compressed.ir)
            return engine.run(scenes)
        dense = run("lowered")
        sparse = run("lowered-sparse")
        assert dense.fallback_activations == sparse.fallback_activations
        assert dense.fallback_activations >= 1
        for d, s in zip(dense.predictions, sparse.predictions):
            assert _box_tuples(s) == _box_tuples(d)

    def test_ladder_swap_parity(self, compressed, scenes, jetson):
        from repro.runtime import DegradationLadder, LadderRung
        lck = _tiny_pp(seed=1)
        low = UPAQCompressor(hck_config(quant_bits=(4,))).compress(
            lck, *lck.example_inputs())
        low.model.eval()
        def run(mode):
            ladder = DegradationLadder(
                [LadderRung(name="primary", model=compressed.model,
                            ir=compressed.ir),
                 LadderRung(name="low", model=low.model, ir=low.ir)],
                promote_after=2)
            def pressure(frame_id, latency, energy):
                if frame_id < 2:
                    return latency * 1e6, energy
                return latency, energy
            engine = InferenceEngine(
                None, jetson, deadline_s=0.05,
                policy=DegradationPolicy(max_consecutive_misses=1),
                ladder=ladder, cost_hook=pressure, execution=mode)
            return engine.run(scenes)
        dense = run("lowered")
        sparse = run("lowered-sparse")
        assert dense.demotions == sparse.demotions >= 1
        assert dense.promotions == sparse.promotions
        for d, s in zip(dense.predictions, sparse.predictions):
            assert _box_tuples(s) == _box_tuples(d)
