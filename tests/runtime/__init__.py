"""Tests for the fault-tolerant streaming runtime."""
