"""Occupancy context thread-locality: no leaks across streams.

Regression suite for the serving-era fix: ``activate_occupancy`` keeps
a strictly per-thread context stack, so two interleaved streams — one
``lowered-sparse``, one ``lowered`` (dense) — running on worker
threads can never see each other's context, and the sparse fallback's
per-frame re-entry (a frame context nested inside the attachment's
window context) unwinds on the thread that opened it.  The shared
*context object* is separately safe to observe from many threads.
"""

import threading

import numpy as np
import pytest

from repro.core import UPAQCompressor, hck_config
from repro.hardware import default_devices
from repro.models import PointPillars
from repro.nn.occupancy import (OccupancyContext, activate_occupancy,
                                current_occupancy)
from repro.pointcloud import (LidarConfig, PillarConfig, SceneConfig,
                              SceneGenerator)
from repro.runtime import InferenceEngine


def _tiny_pp(seed=1):
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=seed)


@pytest.fixture(scope="module")
def compressed():
    model = _tiny_pp()
    report = UPAQCompressor(hck_config()).compress(
        model, *model.example_inputs())
    report.model.eval()
    return report


@pytest.fixture(scope="module")
def scenes():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    generator = SceneGenerator(cfg, seed=0)
    return [generator.generate(i, with_image=False) for i in range(4)]


def _boxes(report):
    return [[(b.x, b.y, b.z, b.dx, b.dy, b.dz, b.yaw, b.label, b.score)
             for b in p.boxes] for p in report.predictions]


def test_interleaved_sparse_and_dense_streams(compressed, scenes):
    """One sparse and one dense stream advancing in lockstep on two
    threads match their solo runs — neither thread's context gates (or
    un-gates) the other's execution — and both threads end clean."""
    jetson = default_devices()["jetson"]

    def engine(execution):
        return InferenceEngine(compressed.model, jetson,
                               ir=compressed.ir, execution=execution,
                               batch_size=1)

    solo = {mode: engine(mode).run(scenes)
            for mode in ("lowered-sparse", "lowered")}

    barrier = threading.Barrier(2)
    results = {}
    errors = []

    def stream(mode):
        try:
            eng = engine(mode)
            eng._predict(scenes[0])         # warm before the barrier
            report_frames = []
            for scene in scenes:            # interleave frame by frame
                barrier.wait()
                report_frames.append(eng._predict(scene))
                assert current_occupancy() is None, (
                    f"{mode}: context leaked out of a frame")
            results[mode] = report_frames
        except BaseException as exc:        # noqa: BLE001
            errors.append(exc)
            barrier.abort()

    threads = [threading.Thread(target=stream, args=(mode,))
               for mode in ("lowered-sparse", "lowered")]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]

    for mode in ("lowered-sparse", "lowered"):
        got = [[(b.x, b.y, b.z, b.dx, b.dy, b.dz, b.yaw, b.label,
                 b.score) for b in r.boxes] for r in results[mode]]
        assert got == _boxes(solo[mode])
    assert current_occupancy() is None


def test_context_nesting_restores_lifo():
    """Nested activations unwind LIFO even when the block raises, and
    never bleed to other threads."""
    outer = OccupancyContext()
    inner = OccupancyContext()
    seen_on_thread = []

    with activate_occupancy(outer):
        assert current_occupancy() is outer

        def probe():
            # A fresh thread starts dense, regardless of this thread's
            # active stack.
            seen_on_thread.append(current_occupancy())
            with activate_occupancy():
                seen_on_thread.append(current_occupancy())
            seen_on_thread.append(current_occupancy())

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert seen_on_thread[0] is None
        assert seen_on_thread[1] is not None
        assert seen_on_thread[2] is None
        assert current_occupancy() is outer     # untouched by the thread

        with activate_occupancy(inner):
            assert current_occupancy() is inner
            with pytest.raises(RuntimeError):
                with activate_occupancy():
                    raise RuntimeError("boom")
            assert current_occupancy() is inner
        assert current_occupancy() is outer
    assert current_occupancy() is None


def test_shared_context_concurrent_observe_is_union():
    """Many threads observing into one shared (window) context produce
    exactly the serial union — mask, bbox and frame count."""
    grid = (32, 32)
    rng = np.random.default_rng(0)
    scatters = [rng.integers(0, 32, size=(20, 2)) for _ in range(16)]

    serial = OccupancyContext()
    for indices in scatters:
        serial.observe(indices, grid)

    shared = OccupancyContext()
    barrier = threading.Barrier(4)

    def worker(index):
        barrier.wait()
        for indices in scatters[index::4]:
            shared.observe(indices, grid)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert shared.frames == serial.frames == len(scatters)
    assert shared.bbox == serial.bbox
    assert np.array_equal(shared.mask, serial.mask)
    assert shared.occupied_cells == serial.occupied_cells


def test_empty_and_incoherent_observation_under_threads():
    """Shape-conflicting scatters from racing threads degrade the
    context exactly like serial ones: incoherent, windows unavailable."""
    shared = OccupancyContext()
    barrier = threading.Barrier(2)

    def worker(shape):
        barrier.wait()
        for _ in range(50):
            shared.observe(np.zeros((0, 2), dtype=np.int64), shape)

    threads = [threading.Thread(target=worker, args=(shape,))
               for shape in ((16, 16), (8, 8))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert shared.observed
    assert shared.frames == 100
    assert shared.canvas_cells == 0         # incoherent → unavailable
    assert shared.window_at(16, 16) is None
