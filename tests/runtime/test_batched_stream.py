"""Micro-batched streaming: window execution ≡ sequential execution.

Acceptance for engine-level batching: for any ``batch_size`` the
stream report — predictions, FrameRecords, telemetry counters,
fallback bookkeeping — is identical to the ``batch_size=1`` run.
Faults keep their per-frame semantics: a corrupt frame in the middle
of a window degrades only itself, and a mid-window watchdog fallback
re-predicts the remaining frames on the fallback model exactly as
sequential execution would have.
"""

import dataclasses

import numpy as np
import pytest

from repro.cli import main
from repro.core import UPAQCompressor, hck_config
from repro.hardware import default_devices
from repro.models import PointPillars
from repro.pointcloud import (LidarConfig, PillarConfig, SceneConfig,
                              SceneGenerator)
from repro.runtime import DegradationPolicy, InferenceEngine


def _tiny_pp(seed=1):
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=seed)


@pytest.fixture(scope="module")
def compressed():
    model = _tiny_pp()
    report = UPAQCompressor(hck_config()).compress(
        model, *model.example_inputs())
    report.model.eval()
    return report


@pytest.fixture(scope="module")
def scenes():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    generator = SceneGenerator(cfg, seed=0)
    return [generator.generate(i, with_image=False) for i in range(7)]


@pytest.fixture(scope="module")
def jetson():
    return default_devices()["jetson"]


def _boxes(report):
    return [[(b.x, b.y, b.z, b.dx, b.dy, b.dz, b.yaw, b.label, b.score)
             for b in p.boxes] for p in report.predictions]


def _poisoned(scene):
    points = scene.points.copy()
    points[0, 0] = np.nan
    return dataclasses.replace(scene, points=points)


class TestBatchedEqualsSequential:
    @pytest.mark.parametrize("execution", ["lowered", "reference"])
    @pytest.mark.parametrize("batch_size", [2, 3, 5, 7])
    def test_reports_identical(self, compressed, scenes, jetson,
                               batch_size, execution):
        def run(n):
            engine = InferenceEngine(compressed.model, jetson,
                                     execution=execution,
                                     ir=compressed.ir, telemetry=True,
                                     batch_size=n)
            return engine.run(scenes)

        sequential = run(1)
        batched = run(batch_size)
        assert batched.frames == sequential.frames
        assert _boxes(batched) == _boxes(sequential)
        assert set(batched.telemetry) == set(sequential.telemetry)
        for name, counter in sequential.telemetry.items():
            assert counter == batched.telemetry[name]

    def test_partial_final_window(self, compressed, scenes, jetson):
        """A stream shorter than the window still emits every frame."""
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered", ir=compressed.ir,
                                 batch_size=64)
        report = engine.run(scenes[:3])
        assert report.num_frames == 3
        assert [f.frame_id for f in report.frames] \
            == [s.frame_id for s in scenes[:3]]


class TestMidWindowFaults:
    def test_corrupt_frame_degrades_only_itself(self, compressed,
                                                scenes, jetson):
        """A NaN-poisoned frame in the middle of a batched window holds
        the last good detections; every neighbor is byte-identical to
        the sequential run of the same poisoned stream."""
        stream = list(scenes[:5])
        stream[2] = _poisoned(stream[2])

        def run(n):
            engine = InferenceEngine(compressed.model, jetson,
                                     execution="lowered",
                                     ir=compressed.ir, batch_size=n)
            return engine.run(stream)

        sequential = run(1)
        batched = run(4)
        assert batched.frames == sequential.frames
        assert _boxes(batched) == _boxes(sequential)
        statuses = [f.status for f in batched.frames]
        assert statuses == ["ok", "ok", "degraded", "ok", "ok"]
        boxes = _boxes(batched)
        assert boxes[2] == boxes[1]         # last-good hold
        assert batched.frames[2].device_latency_s == 0.0

    def test_skip_policy_in_window(self, compressed, scenes, jetson):
        stream = [_poisoned(scenes[0]), scenes[1], scenes[2]]
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered", ir=compressed.ir,
                                 policy=DegradationPolicy(
                                     on_corrupt="skip"),
                                 batch_size=3)
        report = engine.run(stream)
        assert [f.status for f in report.frames] \
            == ["dropped", "ok", "ok"]
        assert report.predictions[0].boxes == []

    def test_watchdog_splits_window(self, compressed, scenes, jetson):
        """An impossible deadline trips the watchdog mid-window; the
        remaining frames re-run on the fallback model — identical to
        sequential execution, including the fallback flags."""
        def run(n):
            engine = InferenceEngine(
                compressed.model, jetson, deadline_s=1e-9,
                execution="lowered", ir=compressed.ir,
                fallback_model=_tiny_pp(seed=5),
                policy=DegradationPolicy(max_consecutive_misses=2),
                batch_size=n)
            report = engine.run(scenes[:6])
            assert engine.on_fallback
            return report

        sequential = run(1)
        batched = run(4)
        for report in (sequential, batched):
            assert report.fallback_activations == 1
            assert [f.fallback for f in report.frames] \
                == [False, False, True, True, True, True]
        assert batched.frames == sequential.frames
        assert _boxes(batched) == _boxes(sequential)


class TestBatchSizeValidation:
    @pytest.mark.parametrize("bad", [0, -1, 2.5, True, "2"])
    def test_rejects_non_positive_int(self, jetson, bad):
        with pytest.raises(ValueError, match="batch_size"):
            InferenceEngine(_tiny_pp(), jetson, batch_size=bad)

    def test_default_is_one(self, jetson):
        assert InferenceEngine(_tiny_pp(), jetson).batch_size == 1


class TestStreamBatchCLI:
    def test_batch_flag_runs(self, capsys, monkeypatch):
        import repro.models.registry as registry
        monkeypatch.setitem(registry.MODEL_REGISTRY, "tinypp",
                            lambda **kw: _tiny_pp())
        code = main(["stream", "--model", "tinypp", "--frames", "4",
                     "--batch", "2"])
        assert code == 0
        assert "stream: 4 frames" in capsys.readouterr().out

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_rejects_bad_batch(self, capsys, monkeypatch, bad):
        import repro.models.registry as registry
        monkeypatch.setitem(registry.MODEL_REGISTRY, "tinypp",
                            lambda **kw: _tiny_pp())
        code = main(["stream", "--model", "tinypp", "--frames", "2",
                     "--batch", bad])
        assert code == 2
        assert "--batch must be >= 1" in capsys.readouterr().err
