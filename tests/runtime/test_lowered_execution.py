"""Lowered integer execution in the inference engine.

Acceptance: ``InferenceEngine(execution="lowered")`` runs a compressed
PointPillars end-to-end through integer executors and its detections
match ``execution="reference"`` bit-for-bit after the final rescale;
``from_packed`` adopts the blob-embedded IR with no re-trace.
"""

import pytest

from repro.core import UPAQCompressor, hck_config, pack_model
from repro.hardware import default_devices
from repro.ir import lower_executors, lowerable_nodes
from repro.models import PointPillars
from repro.nn.graph import layer_map
from repro.pointcloud import (LidarConfig, SceneConfig,
                              SceneGenerator)
from repro.runtime import InferenceEngine, LoweredProgram

from tests.models.conftest import TINY_PILLARS


def _tiny_pp(seed=0):
    return PointPillars(seed=seed, **TINY_PILLARS)


@pytest.fixture(scope="module")
def compressed():
    model = _tiny_pp(seed=1)
    report = UPAQCompressor(hck_config()).compress(
        model, *model.example_inputs())
    report.model.eval()
    return report


@pytest.fixture(scope="module")
def scenes():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    generator = SceneGenerator(cfg, seed=0)
    return [generator.generate(i, with_image=False) for i in range(3)]


@pytest.fixture(scope="module")
def jetson():
    return default_devices()["jetson"]


def _box_tuples(result):
    return [(b.x, b.y, b.z, b.dx, b.dy, b.dz, b.yaw, b.label, b.score)
            for b in result.boxes]


class TestLoweredProgram:
    def test_compressed_model_lowers_executors(self, compressed):
        executors = lower_executors(compressed.ir, compressed.model)
        assert executors
        assert set(executors) \
            == {node.name for node in lowerable_nodes(compressed.ir)}

    def test_attached_patches_and_restores(self, compressed):
        program = LoweredProgram(
            lower_executors(compressed.ir, compressed.model))
        layers = layer_map(compressed.model)
        originals = {name: layers[name].forward
                     for name in program.layer_names}
        with program.attached(compressed.model):
            for name in program.layer_names:
                assert layers[name].forward is not originals[name]
        for name in program.layer_names:
            assert layers[name].forward is originals[name]

    def test_restores_on_exception(self, compressed):
        program = LoweredProgram(
            lower_executors(compressed.ir, compressed.model))
        layers = layer_map(compressed.model)
        name = program.layer_names[0]
        original = layers[name].forward
        with pytest.raises(RuntimeError):
            with program.attached(compressed.model):
                raise RuntimeError("inference blew up")
        assert layers[name].forward is original

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="execution mode"):
            LoweredProgram({}, mode="float128")


class TestEngineParity:
    """The headline guarantee: lowered ≡ reference, bit for bit."""

    def test_detections_match_bit_for_bit(self, compressed, scenes,
                                          jetson):
        reference = InferenceEngine(compressed.model, jetson,
                                    execution="reference",
                                    ir=compressed.ir)
        lowered = InferenceEngine(compressed.model, jetson,
                                  execution="lowered", ir=compressed.ir)
        ref_report = reference.run(scenes)
        low_report = lowered.run(scenes)
        assert len(low_report.predictions) == len(scenes)
        for ref, low in zip(ref_report.predictions,
                            low_report.predictions):
            assert _box_tuples(low) == _box_tuples(ref)

    def test_lowered_path_actually_runs_executors(self, compressed,
                                                  jetson):
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered", ir=compressed.ir)
        assert engine.program.mode == "lowered"
        assert len(engine.program) > 0

    def test_quantization_changes_detections_vs_uncompressed(
            self, compressed, scenes, jetson):
        """Sanity that parity is not vacuous: the quantized executors
        really do produce different numerics than the float model."""
        float_model = _tiny_pp(seed=1)
        float_model.eval()
        float_result = float_model.predict(scenes[0])
        engine = InferenceEngine(compressed.model, jetson,
                                 execution="lowered", ir=compressed.ir)
        lowered_result = engine._predict(scenes[0])
        assert _box_tuples(lowered_result) != _box_tuples(float_result)

    def test_bad_execution_mode_rejected(self, jetson):
        with pytest.raises(ValueError, match="execution mode"):
            InferenceEngine(_tiny_pp(), jetson, execution="fast")

    def test_uncompressed_model_runs_plain_forward(self, scenes, jetson):
        """A dense fp32 model has no lowerable nodes; both modes fall
        back to the normal float forward and agree exactly."""
        model = _tiny_pp(seed=5)
        model.eval()
        engine = InferenceEngine(model, jetson, execution="lowered")
        assert len(engine.program) == 0
        plain = model.predict(scenes[0])
        routed = engine._predict(scenes[0])
        assert _box_tuples(routed) == _box_tuples(plain)


class TestFromPackedIR:
    def test_engine_adopts_blob_ir_without_retrace(self, compressed,
                                                   scenes, jetson,
                                                   monkeypatch):
        blob = pack_model(compressed.model, ir=compressed.ir)

        def _no_retrace(*args, **kwargs):
            raise AssertionError("engine re-traced a blob-restored model")
        monkeypatch.setattr("repro.ir.extract.compute_graph", _no_retrace)

        engine = InferenceEngine.from_packed(
            blob, _tiny_pp(seed=2), jetson, execution="lowered")
        assert engine.ir is not None
        assert engine.plan.compression_ratio \
            == compressed.compression_ratio
        report = engine.run(scenes[:1])
        assert report.num_frames == 1

    def test_packed_engine_matches_live_engine(self, compressed, scenes,
                                               jetson):
        blob = pack_model(compressed.model, ir=compressed.ir)
        packed_engine = InferenceEngine.from_packed(
            blob, _tiny_pp(seed=2), jetson, execution="lowered")
        live_engine = InferenceEngine(compressed.model, jetson,
                                      execution="lowered",
                                      ir=compressed.ir)
        packed = packed_engine.run(scenes[:2])
        live = live_engine.run(scenes[:2])
        for a, b in zip(packed.predictions, live.predictions):
            assert _box_tuples(a) == _box_tuples(b)
