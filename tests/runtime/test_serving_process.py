"""Process-backend serving ≡ thread serving ≡ solo, hammered.

Acceptance for the process backend: the same scenario mix — ladder
demotions, injected faults, sparse execution, telemetry lanes — run
under ``backend="thread"`` and ``backend="process"`` produces
byte-identical per-stream reports, swap events and telemetry digests,
all equal to solo :class:`InferenceEngine` runs.  Plus the resilience
contracts: a SIGKILLed worker pool respawns and the run still matches
solo; a platform without fork/spawn falls back to the thread backend
instead of failing; a hung worker only costs a local re-execution
(window timeout); and a poisoned frame finalizes its window's members
with typed ``failed`` records — freeing backpressure capacity — on
both backends.
"""

import dataclasses
import json
import os
import pickle
import signal
import time

import numpy as np
import pytest

import repro.runtime.serving as serving_mod
from repro.cli import main
from repro.core import UPAQCompressor, hck_config
from repro.core.archive import ArchiveReader, ArchiveWriter
from repro.core.packing import pack_ladder
from repro.hardware import default_devices
from repro.models import PointPillars
from repro.pointcloud import (LidarConfig, PillarConfig, SceneConfig,
                              SceneGenerator)
from repro.runtime import (DegradationLadder, DegradationPolicy,
                           FaultInjector, FaultSpec, InferenceEngine,
                           LadderRung, ReplicaSpec, ServingEngine,
                           StreamSLO)
from repro.runtime.engine import _INHERIT
from repro.runtime.serving import _Lane


def _tiny_pp(seed=1):
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=seed)


def _model_factory():
    """Module-level (hence picklable) architecture factory for
    blob/archive replica specs."""
    return _tiny_pp(seed=1)


@pytest.fixture(scope="module")
def compressed():
    model = _tiny_pp()
    report = UPAQCompressor(hck_config()).compress(
        model, *model.example_inputs())
    report.model.eval()
    return report


@pytest.fixture(scope="module")
def jetson():
    return default_devices()["jetson"]


def _scene_streams(count=4, frames=5):
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    streams = {}
    for index in range(count):
        generator = SceneGenerator(cfg, seed=index)
        streams[f"s{index}"] = [generator.generate(1000 * index + frame)
                                for frame in range(frames)]
    return streams


def _boxes(report):
    return [[(b.x, b.y, b.z, b.dx, b.dy, b.dz, b.yaw, b.label, b.score)
             for b in p.boxes] for p in report.predictions]


def _assert_reports_equal(got, ref):
    assert got.frames == ref.frames
    assert _boxes(got) == _boxes(ref)
    assert got.swap_events == ref.swap_events
    assert got.fallback_activations == ref.fallback_activations
    assert got.rung_residency == ref.rung_residency
    assert got.deadline_s == ref.deadline_s
    assert got.telemetry == ref.telemetry


def _solo_engine(compressed, jetson, **kwargs):
    kwargs.setdefault("execution", "lowered")
    kwargs.setdefault("batch_size", 4)
    return InferenceEngine(compressed.model, jetson, ir=compressed.ir,
                           **kwargs)


def _poison(scene):
    """A scene that passes submit-time validation (finite points) but
    crashes prediction: the point feature width is too narrow for
    pillarization.  Its signature also differs from clean scenes, so
    it always rides in its own window — the failure stays contained."""
    return dataclasses.replace(scene, points=np.ones((5, 2)))


# ---------------------------------------------------------------------------
# Cross-backend byte-equality (the hammer)
# ---------------------------------------------------------------------------

def test_full_scenario_mix_byte_equal_across_backends(compressed, jetson):
    """Ladder + cost-hook misses + injected faults + telemetry lanes:
    thread backend, process backend and solo runs all byte-equal."""

    def hook(frame_id, latency, energy):
        if frame_id % 1000 in (2, 3, 4):
            return latency * 1000.0, energy
        return latency, energy

    def ladder():
        other = _tiny_pp(seed=2)
        rep2 = UPAQCompressor(hck_config()).compress(
            other, *other.example_inputs())
        rep2.model.eval()
        return DegradationLadder(
            [LadderRung(name="primary", model=compressed.model,
                        ir=compressed.ir),
             LadderRung(name="cheap", model=rep2.model, ir=rep2.ir)],
            promote_after=2, probation=1)

    policy = DegradationPolicy(max_consecutive_misses=2)
    fault_spec = FaultSpec(drop_rate=0.2, corrupt_rate=0.2, seed=7)
    streams = _scene_streams(count=4, frames=6)
    slos = {"s0": StreamSLO(telemetry=True),
            "s1": StreamSLO(fault_injector=FaultInjector(fault_spec)),
            "s3": StreamSLO(telemetry=True)}

    def run(backend):
        engine = InferenceEngine(None, jetson, ladder=ladder(),
                                 deadline_s=0.01, execution="lowered",
                                 batch_size=4, policy=policy,
                                 cost_hook=hook)
        kwargs = {"replicas": 2} if backend == "process" else {}
        with ServingEngine(engine, backend=backend, **kwargs) as serving:
            reports = serving.serve(streams, slos=slos)
            return reports, serving.stats(), serving.backend

    thread_reports, _, _ = run("thread")
    proc_reports, proc_stats, proc_backend = run("process")
    assert proc_backend == "process", "silent thread fallback"
    assert proc_stats.backend == "process"
    assert proc_stats.replicas == 2
    assert proc_stats.frames_completed == 24

    # Cross-backend: every stream's report identical, telemetry included.
    for name in streams:
        _assert_reports_equal(proc_reports[name], thread_reports[name])
    assert proc_reports["s0"].telemetry  # the digests were non-trivial
    assert any(r.swap_events for r in proc_reports.values()), \
        "scenario never demoted — the ladder leg of the mix is dead"

    # And equal to solo, swaps/telemetry/faults included.
    solo_ladder = ladder()
    for name, scenes in streams.items():
        telemetry = name in ("s0", "s3")
        solo = InferenceEngine(
            None, jetson, ladder=solo_ladder, deadline_s=0.01,
            execution="lowered",
            batch_size=1 if telemetry else 4,
            policy=policy, cost_hook=hook, telemetry=telemetry,
            fault_injector=FaultInjector(fault_spec)
            if name == "s1" else None)
        _assert_reports_equal(proc_reports[name], solo.run(scenes))

    # Self-describing stats: window counts attribute to worker pids
    # (or the local fallback) and to ladder rungs by name.
    assert proc_stats.windows_by_replica
    assert all(key.startswith("pid:") or key == "local"
               for key in proc_stats.windows_by_replica)
    assert sum(proc_stats.windows_by_replica.values()) == \
        proc_stats.windows
    assert set(proc_stats.windows_by_rung) <= {"primary", "cheap"}
    assert sum(proc_stats.windows_by_rung.values()) == proc_stats.windows


def test_process_backend_sparse_telemetry_byte_equal(compressed, jetson):
    """lowered-sparse + per-stream telemetry across the process
    boundary: worker-side occupancy contexts and merged counter deltas
    match solo sparse runs exactly."""
    streams = _scene_streams(count=2, frames=4)
    engine = _solo_engine(compressed, jetson,
                          execution="lowered-sparse", batch_size=1)
    slos = {name: StreamSLO(telemetry=True) for name in streams}
    with ServingEngine(engine, backend="process",
                       replicas=2) as serving:
        reports = serving.serve(streams, slos=slos)
        assert serving.backend == "process"
    for name, scenes in streams.items():
        ref = _solo_engine(compressed, jetson,
                           execution="lowered-sparse", batch_size=1,
                           telemetry=True).run(scenes)
        _assert_reports_equal(reports[name], ref)
        assert reports[name].telemetry


# ---------------------------------------------------------------------------
# Resilience: killed workers, missing start methods, hung windows
# ---------------------------------------------------------------------------

def test_worker_kill_and_recover_byte_equal(compressed, jetson):
    """SIGKILLing every pool worker mid-run breaks the pool; the
    scheduler respawns it and the streams still finish byte-equal."""
    streams = _scene_streams(count=2, frames=6)
    engine = _solo_engine(compressed, jetson, batch_size=1)
    with ServingEngine(engine, backend="process",
                       replicas=2) as serving:
        assert serving.backend == "process"
        pids = serving.worker_pids
        assert pids
        handles = {name: serving.open_stream(name) for name in streams}
        for name in streams:
            handles[name].submit(streams[name][0])
        deadline = time.monotonic() + 120
        while serving.stats().windows < 1:
            assert time.monotonic() < deadline, "no window completed"
            time.sleep(0.01)
        for pid in pids:
            os.kill(pid, signal.SIGKILL)
        for name, scenes in streams.items():
            for scene in scenes[1:]:
                handles[name].submit(scene, block=True)
            handles[name].close()
        reports = {name: handles[name].result(timeout=300)
                   for name in streams}
        stats = serving.stats()
    assert stats.pool_failures >= 1, "killed pool never detected"
    assert stats.frames_completed == 12
    assert stats.frames_failed == 0, "recovery must not fail frames"
    for name, scenes in streams.items():
        ref = _solo_engine(compressed, jetson, batch_size=1).run(scenes)
        _assert_reports_equal(reports[name], ref)


def test_no_start_method_falls_back_to_thread(compressed, jetson,
                                              monkeypatch):
    """No usable fork/spawn: backend='process' degrades to threads —
    replicas built locally from the spec — and still serves correctly."""
    monkeypatch.setattr(serving_mod, "_resolve_mp_context", lambda: None)
    streams = _scene_streams(count=2, frames=3)
    engine = _solo_engine(compressed, jetson)
    with ServingEngine(engine, backend="process",
                       replicas=2) as serving:
        assert serving.backend == "thread"
        assert serving.worker_pids == []
        reports = serving.serve(streams)
        stats = serving.stats()
    assert stats.backend == "thread"
    assert stats.replicas == 2
    assert all(key.startswith("replica")
               for key in stats.windows_by_replica)
    for name, scenes in streams.items():
        ref = _solo_engine(compressed, jetson).run(scenes)
        _assert_reports_equal(reports[name], ref)


def test_window_timeout_reexecutes_locally(compressed, jetson):
    """A per-window timeout re-runs the window on the scheduler's own
    engine — deterministic prediction keeps the report byte-equal."""
    streams = _scene_streams(count=1, frames=3)
    engine = _solo_engine(compressed, jetson, batch_size=1)
    with ServingEngine(engine, backend="process", replicas=1,
                       window_timeout_s=1e-4) as serving:
        assert serving.backend == "process"
        reports = serving.serve(streams)
        stats = serving.stats()
    assert stats.window_timeouts >= 1
    assert stats.windows_by_replica.get("local", 0) >= 1
    ref = _solo_engine(compressed, jetson, batch_size=1).run(
        streams["s0"])
    _assert_reports_equal(reports["s0"], ref)


# ---------------------------------------------------------------------------
# Poisoned frames: typed per-frame failure on both backends
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", ["thread", "process"])
def test_poisoned_frame_fails_typed_and_frees_capacity(
        compressed, jetson, backend):
    """A frame whose prediction raises finalizes as status='failed'
    (empty prediction, deadline missed, zero cost), frees its pipeline
    slot, and leaves every other frame and stream byte-equal to solo."""
    streams = _scene_streams(count=2, frames=4)
    poisoned = list(streams["s0"])
    poisoned[1] = _poison(poisoned[1])
    engine = _solo_engine(compressed, jetson)
    with ServingEngine(engine, backend=backend,
                       queue_depth=2) as serving:
        reports = serving.serve({"s0": poisoned, "s1": streams["s1"]})
        stats = serving.stats()
    assert stats.failed_windows == 1
    assert stats.frames_failed == 1
    assert stats.frames_completed == 8  # failed frames free capacity
    report = reports["s0"]
    assert [f.status for f in report.frames] == \
        ["ok", "failed", "ok", "ok"]
    failed = report.frames[1]
    assert report.predictions[1].boxes == []
    assert not failed.deadline_met
    assert failed.device_latency_s == 0.0
    assert failed.device_energy_j == 0.0
    assert report.failed_frames == 1
    assert "1 failed" in report.summary()
    # The untouched stream — and s0's clean frames — still match solo.
    ref = _solo_engine(compressed, jetson).run(streams["s1"])
    _assert_reports_equal(reports["s1"], ref)
    solo0 = _solo_engine(compressed, jetson).run(streams["s0"])
    for index in (0, 2, 3):
        assert report.frames[index] == solo0.frames[index]


# ---------------------------------------------------------------------------
# Replica specs: blobs, archives, and the wire contract
# ---------------------------------------------------------------------------

def _ladder_archive(tmp_path, compressed):
    other = _tiny_pp(seed=2)
    rep2 = UPAQCompressor(hck_config()).compress(
        other, *other.example_inputs())
    rep2.model.eval()
    rungs = [LadderRung(name="primary", model=compressed.model,
                        ir=compressed.ir),
             LadderRung(name="cheap", model=rep2.model, ir=rep2.ir)]
    writer = ArchiveWriter()
    for rung, blob in zip(rungs, pack_ladder(rungs)):
        writer.add(rung.name, blob)
    path = tmp_path / "ladder.rar"
    path.write_bytes(writer.finish())
    return path, [rung.name for rung in rungs]


def test_replica_spec_blobs_build_matches_source(compressed, jetson):
    """A blob-spec replica (pack_ladder wire form) predicts identically
    to the engine its blobs came from, with zero re-trace."""
    rungs = [LadderRung(name="primary", model=compressed.model,
                        ir=compressed.ir)]
    spec = ReplicaSpec.from_blobs(
        zip(["primary"], pack_ladder(rungs)), _model_factory, jetson,
        batch_size=4)
    restored = pickle.loads(pickle.dumps(spec))
    assert (restored.kind, restored.batch_size) == ("blobs", 4)
    replica = restored.build()
    scenes = _scene_streams(count=1, frames=3)["s0"]
    ref = _solo_engine(compressed, jetson).run(scenes)
    _assert_reports_equal(replica.run(scenes), ref)
    with pytest.raises(ValueError, match="at least one rung"):
        ReplicaSpec.from_blobs([], _model_factory, jetson)


def test_process_backend_with_archive_spec(tmp_path, compressed, jetson):
    """Workers restore their ladder from an archive *file* (the spec
    ships only the path), and reports still match the parent engine."""
    path, names = _ladder_archive(tmp_path, compressed)

    def parent():
        ladder = DegradationLadder.from_archive(
            ArchiveReader.open(path), names, _model_factory,
            promote_after=0, probation=0)
        return InferenceEngine(None, jetson, ladder=ladder,
                               execution="lowered", batch_size=4)

    spec = ReplicaSpec.from_archive(path, names, _model_factory, jetson,
                                    promote_after=0, probation=0,
                                    batch_size=4)
    streams = _scene_streams(count=2, frames=3)
    with ServingEngine(parent(), backend="process", replicas=2,
                       spec=spec) as serving:
        reports = serving.serve(streams)
        assert serving.backend == "process"
    for name, scenes in streams.items():
        _assert_reports_equal(reports[name], parent().run(scenes))


def test_serving_rejects_spec_on_thread_backend(compressed, jetson):
    engine = _solo_engine(compressed, jetson)
    spec = ReplicaSpec.from_engine(engine)
    with pytest.raises(ValueError, match="process backend"):
        ServingEngine(engine, spec=spec)    # backend defaults to thread
    with pytest.raises(ValueError, match="window_timeout_s"):
        ServingEngine(engine, window_timeout_s=0.0)
    with pytest.raises(ValueError, match="backend"):
        ServingEngine(engine, backend="fiber")


# ---------------------------------------------------------------------------
# Scheduler policies: rung-aware co-batching + dynamic deadlines
# ---------------------------------------------------------------------------

def _fresh_lane(engine, name, *, deadline_s=None, telemetry=False):
    session = engine._new_session(deadline_s=deadline_s, policy=None,
                                  fault_injector=_INHERIT, trace=None,
                                  collectors={} if telemetry else None)
    return _Lane(name, session, 8, telemetry)


def test_hold_policy_growth_and_deadline_rules(compressed, jetson):
    """Unit-level contract of the partial-window hold decision."""
    serving = ServingEngine(_solo_engine(compressed, jetson))
    serving.shutdown()
    engine = serving._engine
    scene = _scene_streams(count=1, frames=1)["s0"][0]
    now = time.perf_counter()

    ready = _fresh_lane(engine, "ready", deadline_s=10.0)
    ready.classified.append((("run", 0, scene, None), now))
    inflight = _fresh_lane(engine, "busy")
    inflight.inflight = 1
    serving._lanes = {"ready": ready, "busy": inflight}

    # Another mixable lane has a window in flight whose emission could
    # widen this bucket — hold.
    assert serving._hold_partial_locked([ready], 0, now)

    # ...unless the oldest member's slack no longer covers the window
    # cost: dispatch, and count it.
    stale = _fresh_lane(engine, "stale", deadline_s=0.5)
    stale.classified.append((("run", 0, scene, None), now - 5.0))
    serving._lanes = {"stale": stale, "busy": inflight}
    before = serving._stats.deadline_dispatches
    assert not serving._hold_partial_locked([stale], 0, now)
    assert serving._stats.deadline_dispatches == before + 1

    # No in-flight compatible lane — nothing can grow the bucket.
    serving._lanes = {"ready": ready}
    assert not serving._hold_partial_locked([ready], 0, now)

    # A telemetry lane never mixes, so it cannot feed the bucket...
    telem = _fresh_lane(engine, "telem", telemetry=True)
    telem.inflight = 1
    serving._lanes = {"ready": ready, "telem": telem}
    assert not serving._hold_partial_locked([ready], 0, now)

    # ...nor can a closed lane with a drained pipeline.
    drained = _fresh_lane(engine, "drained")
    drained.inflight = 1
    drained.closed = True
    serving._lanes = {"ready": ready, "drained": drained}
    assert not serving._hold_partial_locked([ready], 0, now)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_serve_process_backend_smoke(tmp_path, monkeypatch):
    import repro.models.registry as registry
    monkeypatch.setitem(registry.MODEL_REGISTRY, "tinypp",
                        lambda **kw: _tiny_pp())
    report_path = tmp_path / "serve.json"
    code = main(["serve", "--model", "tinypp", "--preset", "none",
                 "--streams", "2", "--frames", "2", "--batch", "2",
                 "--backend", "process", "--replicas", "2",
                 "--report", str(report_path)])
    assert code == 0
    payload = json.loads(report_path.read_text())
    assert payload["backend_requested"] == "process"
    assert payload["backend"] == "process"
    assert payload["replicas"] == 2
    assert payload["aggregate"]["frames"] == 4
    scheduler = payload["scheduler"]
    assert scheduler["frames_failed"] == 0
    assert scheduler["pool_failures"] == 0
    assert sum(scheduler["windows_by_replica"].values()) == \
        scheduler["windows"]


def test_cli_serve_rejects_bad_replicas(capsys):
    assert main(["serve", "--replicas", "0"]) == 2
    assert "--replicas" in capsys.readouterr().err
