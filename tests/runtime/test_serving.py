"""Multi-stream serving ≡ solo streaming, hammered.

Acceptance for the serving layer: per-stream reports produced under
the scheduler — frames, predictions, swap events, rung residency,
telemetry counters — are byte-equal to running each stream alone on a
solo :class:`InferenceEngine` with the same configuration.  Plus the
service contracts: typed admission rejects, bounded-queue
backpressure (never a silent drop), cross-stream micro-batch windows
forming only when shapes match, and per-stream telemetry isolation.
"""

import dataclasses
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.core import UPAQCompressor, hck_config
from repro.hardware import default_devices
from repro.models import PointPillars
from repro.pointcloud import (LidarConfig, PillarConfig, SceneConfig,
                              SceneGenerator)
from repro.runtime import (AdmissionError, BackpressureError,
                           DegradationPolicy, InferenceEngine,
                           ServingEngine, StreamSLO)


def _tiny_pp(seed=1):
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=seed)


@pytest.fixture(scope="module")
def compressed():
    model = _tiny_pp()
    report = UPAQCompressor(hck_config()).compress(
        model, *model.example_inputs())
    report.model.eval()
    return report


@pytest.fixture(scope="module")
def jetson():
    return default_devices()["jetson"]


def _scene_streams(count=4, frames=5, with_image=False):
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    streams = {}
    for index in range(count):
        generator = SceneGenerator(cfg, seed=index)
        streams[f"s{index}"] = [
            generator.generate(1000 * index + frame,
                               with_image=with_image)
            for frame in range(frames)]
    return streams


def _boxes(report):
    return [[(b.x, b.y, b.z, b.dx, b.dy, b.dz, b.yaw, b.label, b.score)
             for b in p.boxes] for p in report.predictions]


def _assert_reports_equal(got, ref):
    """Byte-equality of everything a solo report records."""
    assert got.frames == ref.frames
    assert _boxes(got) == _boxes(ref)
    assert got.swap_events == ref.swap_events
    assert got.fallback_activations == ref.fallback_activations
    assert got.rung_residency == ref.rung_residency
    assert got.deadline_s == ref.deadline_s
    assert got.telemetry == ref.telemetry


def _solo_engine(compressed, jetson, **kwargs):
    kwargs.setdefault("execution", "lowered")
    kwargs.setdefault("batch_size", 4)
    return InferenceEngine(compressed.model, jetson, ir=compressed.ir,
                           **kwargs)


# ---------------------------------------------------------------------------
# Byte-equality vs solo engines
# ---------------------------------------------------------------------------

def test_four_streams_byte_equal_to_solo(compressed, jetson):
    streams = _scene_streams(count=4, frames=5)
    with ServingEngine(_solo_engine(compressed, jetson)) as serving:
        reports = serving.serve(streams)
        stats = serving.stats()
    assert stats.frames_completed == 20
    # Concurrent clients over a shared batch_size=4 engine must have
    # formed at least one cross-stream window.
    assert stats.cross_stream_windows > 0
    for name, scenes in streams.items():
        ref = _solo_engine(compressed, jetson).run(scenes)
        _assert_reports_equal(reports[name], ref)


def test_streams_with_faults_and_ladder_byte_equal(compressed, jetson):
    """Swap events and rung residency survive the scheduler byte-equal.

    Each stream gets its own deadline and a cost hook that forces
    deadline misses on chosen frames, so the watchdog demotes (and
    with promotion enabled, climbs back) mid-stream — under serving
    the swaps must land on exactly the same frames as solo.
    """
    from repro.runtime import DegradationLadder, LadderRung

    def hook(frame_id, latency, energy):
        # Frames 2..4 of every stream blow the deadline.
        if frame_id % 1000 in (2, 3, 4):
            return latency * 1000.0, energy
        return latency, energy

    def ladder():
        other = _tiny_pp(seed=2)
        rep2 = UPAQCompressor(hck_config()).compress(
            other, *other.example_inputs())
        rep2.model.eval()
        return DegradationLadder(
            [LadderRung(name="primary", model=compressed.model,
                        ir=compressed.ir),
             LadderRung(name="cheap", model=rep2.model, ir=rep2.ir)],
            promote_after=2, probation=1)

    policy = DegradationPolicy(max_consecutive_misses=2)
    streams = _scene_streams(count=2, frames=8)
    shared = ladder()
    engine = InferenceEngine(None, jetson, ladder=shared,
                             deadline_s=0.01, execution="lowered",
                             batch_size=4, policy=policy,
                             cost_hook=hook)
    with ServingEngine(engine) as serving:
        reports = serving.serve(streams)
    solo_ladder = ladder()
    for name, scenes in streams.items():
        solo = InferenceEngine(None, jetson, ladder=solo_ladder,
                               deadline_s=0.01, execution="lowered",
                               batch_size=4, policy=policy,
                               cost_hook=hook)
        ref = solo.run(scenes)
        assert ref.swap_events, "test needs actual swaps to be meaningful"
        _assert_reports_equal(reports[name], ref)


def test_per_stream_slo_overrides_byte_equal(compressed, jetson):
    """Per-stream deadlines, policies and injectors match solo engines
    configured the same way."""
    from repro.runtime import FaultInjector, FaultSpec

    streams = _scene_streams(count=2, frames=6)
    spec = FaultSpec(drop_rate=0.2, corrupt_rate=0.2, seed=7)
    slos = {
        "s0": StreamSLO(deadline_s=0.0001,
                        policy=DegradationPolicy(on_corrupt="skip",
                                                 max_consecutive_misses=0),
                        fault_injector=FaultInjector(spec)),
        "s1": StreamSLO(deadline_s=0.5),
    }
    with ServingEngine(_solo_engine(compressed, jetson)) as serving:
        reports = serving.serve(streams, slos=slos)
    ref0 = _solo_engine(
        compressed, jetson, deadline_s=0.0001,
        policy=DegradationPolicy(on_corrupt="skip",
                                 max_consecutive_misses=0),
        fault_injector=FaultInjector(spec)).run(streams["s0"])
    ref1 = _solo_engine(compressed, jetson,
                        deadline_s=0.5).run(streams["s1"])
    _assert_reports_equal(reports["s0"], ref0)
    _assert_reports_equal(reports["s1"], ref1)


def test_telemetry_streams_isolated_and_byte_equal(compressed, jetson):
    """Per-stream telemetry counters equal the solo engine's and never
    leak across streams.

    Telemetry streams run single-frame windows (per-layer counts can't
    be split across a batched pass), so the solo reference uses
    ``batch_size=1`` — dense counters are batch-invariant, but this
    also keeps the equality exact under ``lowered-sparse`` dynamic
    counters, which are windowing-dependent (see docs/SERVING.md).
    """
    streams = _scene_streams(count=3, frames=4)
    slos = {"s0": StreamSLO(telemetry=True),
            "s1": StreamSLO(telemetry=True)}    # s2: telemetry off
    with ServingEngine(_solo_engine(compressed, jetson)) as serving:
        reports = serving.serve(streams, slos=slos)
    for name in ("s0", "s1"):
        ref = _solo_engine(compressed, jetson, batch_size=1,
                           telemetry=True).run(streams[name])
        _assert_reports_equal(reports[name], ref)
        assert reports[name].telemetry
    assert reports["s2"].telemetry == {}


def test_sparse_execution_streams_byte_equal(compressed, jetson):
    """lowered-sparse streams (thread-local occupancy contexts on
    worker threads) match solo sparse runs."""
    streams = _scene_streams(count=2, frames=4)
    engine = _solo_engine(compressed, jetson,
                          execution="lowered-sparse", batch_size=1)
    slos = {name: StreamSLO(telemetry=True) for name in streams}
    with ServingEngine(engine) as serving:
        reports = serving.serve(streams, slos=slos)
    for name, scenes in streams.items():
        ref = _solo_engine(compressed, jetson,
                           execution="lowered-sparse", batch_size=1,
                           telemetry=True).run(scenes)
        _assert_reports_equal(reports[name], ref)


def test_threaded_clients_interleaved_submission(compressed, jetson):
    """Clients submitting frame-by-frame from their own threads (the
    serve() convenience aside) still get byte-equal reports."""
    streams = _scene_streams(count=4, frames=4)
    with ServingEngine(_solo_engine(compressed, jetson)) as serving:
        handles = {name: serving.open_stream(name) for name in streams}

        def client(name):
            for scene in streams[name]:
                handles[name].submit(scene)
            handles[name].close()

        threads = [threading.Thread(target=client, args=(name,))
                   for name in streams]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reports = {name: handles[name].result(timeout=120)
                   for name in streams}
        for name in streams:
            assert len(handles[name].service_latencies) == 4
    for name, scenes in streams.items():
        ref = _solo_engine(compressed, jetson).run(scenes)
        _assert_reports_equal(reports[name], ref)


# ---------------------------------------------------------------------------
# Batching rules
# ---------------------------------------------------------------------------

def test_mixed_shapes_never_share_windows(compressed, jetson):
    """Streams with mismatched scene signatures (camera image present
    vs absent) are served but never batched together."""
    with_image = _scene_streams(count=1, frames=4, with_image=True)
    without = _scene_streams(count=1, frames=4)
    streams = {"cam": with_image["s0"], "lidar": without["s0"]}
    with ServingEngine(_solo_engine(compressed, jetson)) as serving:
        reports = serving.serve(streams)
        stats = serving.stats()
    assert stats.cross_stream_windows == 0
    assert stats.frames_completed == 8
    for name, scenes in streams.items():
        ref = _solo_engine(compressed, jetson).run(scenes)
        _assert_reports_equal(reports[name], ref)


def test_batch_size_one_engine_never_batches(compressed, jetson):
    streams = _scene_streams(count=2, frames=3)
    engine = _solo_engine(compressed, jetson, batch_size=1)
    with ServingEngine(engine) as serving:
        serving.serve(streams)
        stats = serving.stats()
    assert stats.cross_stream_windows == 0
    assert stats.batched_frames == 0
    assert stats.windows == 6


# ---------------------------------------------------------------------------
# Admission control and backpressure
# ---------------------------------------------------------------------------

def test_admission_rejects_past_max_streams(compressed, jetson):
    with ServingEngine(_solo_engine(compressed, jetson),
                       max_streams=2) as serving:
        serving.open_stream("a")
        serving.open_stream("b")
        with pytest.raises(AdmissionError, match="max_streams"):
            serving.open_stream("c")


def test_admission_rejects_duplicate_and_unknown_streams(
        compressed, jetson):
    streams = _scene_streams(count=1, frames=1)
    scene = streams["s0"][0]
    with ServingEngine(_solo_engine(compressed, jetson)) as serving:
        serving.open_stream("a")
        with pytest.raises(AdmissionError, match="already exists"):
            serving.open_stream("a")
        with pytest.raises(AdmissionError, match="unknown stream"):
            serving.submit("nope", scene)
        serving.close_stream("a")
        with pytest.raises(AdmissionError, match="closed"):
            serving.submit("a", scene)


def test_backpressure_typed_reject_not_silent_drop(compressed, jetson):
    """Past the bounded queue, block=False raises immediately and a
    blocking submit with a timeout raises after it — and every frame
    that was admitted is still served (nothing silently dropped)."""
    streams = _scene_streams(count=1, frames=6)
    scenes = streams["s0"]
    engine = _solo_engine(compressed, jetson, batch_size=1)
    with ServingEngine(engine, queue_depth=2) as serving:
        handle = serving.open_stream("s0",
                                     StreamSLO(queue_depth=2))
        admitted = 0
        rejected = 0
        for scene in scenes:
            try:
                handle.submit(scene, block=False)
                admitted += 1
            except BackpressureError:
                rejected += 1
        assert rejected > 0, "queue_depth=2 never filled — no pressure"
        with pytest.raises(BackpressureError):
            # Refill to the bound, then prove the timeout path.
            while True:
                handle.submit(scenes[0], block=False)
                admitted += 1
        with pytest.raises(BackpressureError, match="full"):
            handle.submit(scenes[0], timeout=0.001)
        handle.close()
        report = handle.result(timeout=120)
        stats = serving.stats()
    assert report.num_frames == admitted
    assert stats.frames_rejected >= rejected + 1
    assert stats.frames_completed == admitted


def test_blocking_submit_waits_for_space(compressed, jetson):
    """block=True rides out a full queue instead of rejecting — the
    whole stream lands, byte-equal to solo."""
    streams = _scene_streams(count=1, frames=6)
    engine = _solo_engine(compressed, jetson, batch_size=1)
    with ServingEngine(engine, queue_depth=1) as serving:
        handle = serving.open_stream("s0")
        for scene in streams["s0"]:
            handle.submit(scene, block=True)
        handle.close()
        report = handle.result(timeout=120)
    ref = _solo_engine(compressed, jetson, batch_size=1).run(
        streams["s0"])
    _assert_reports_equal(report, ref)


def test_shutdown_refuses_new_work(compressed, jetson):
    serving = ServingEngine(_solo_engine(compressed, jetson))
    serving.open_stream("a")
    serving.shutdown()
    with pytest.raises(AdmissionError):
        serving.open_stream("b")


def test_serving_engine_rejects_bad_construction(compressed, jetson):
    engine = _solo_engine(compressed, jetson)
    with pytest.raises(ValueError, match="replicas"):
        ServingEngine(engine, replicas=2)   # instance, not a factory
    with pytest.raises(ValueError, match="telemetry"):
        ServingEngine(_solo_engine(compressed, jetson, telemetry=True))
    with pytest.raises(ValueError, match="max_streams"):
        ServingEngine(engine, max_streams=0)
    with pytest.raises(ValueError, match="queue_depth"):
        ServingEngine(engine, queue_depth=0)


def test_replica_pool_from_factory(compressed, jetson):
    """A factory-built replica pool executes windows concurrently and
    stays byte-equal to solo."""
    streams = _scene_streams(count=2, frames=4)

    def factory():
        return _solo_engine(compressed, jetson)

    with ServingEngine(factory, replicas=2) as serving:
        reports = serving.serve(streams)
    for name, scenes in streams.items():
        ref = _solo_engine(compressed, jetson).run(scenes)
        _assert_reports_equal(reports[name], ref)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def test_cli_serve_smoke(tmp_path, monkeypatch):
    import repro.models.registry as registry
    monkeypatch.setitem(registry.MODEL_REGISTRY, "tinypp",
                        lambda **kw: _tiny_pp())
    report_path = tmp_path / "serve.json"
    code = main(["serve", "--model", "tinypp", "--preset", "none",
                 "--streams", "2", "--frames", "2", "--batch", "2",
                 "--report", str(report_path)])
    assert code == 0
    import json
    payload = json.loads(report_path.read_text())
    assert payload["streams"] == 2
    assert payload["aggregate"]["frames"] == 4
    assert payload["aggregate"]["service_p99_ms"] >= \
        payload["aggregate"]["service_p50_ms"]


def test_cli_serve_rejects_bad_args(capsys):
    assert main(["serve", "--streams", "0"]) == 2
    assert main(["serve", "--offered-load", "-1"]) == 2
    assert main(["serve", "--queue-depth", "0"]) == 2
    err = capsys.readouterr().err
    assert "--streams" in err and "--offered-load" in err
