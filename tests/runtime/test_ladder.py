"""Multi-rung degradation ladder: demotion, promotion, zero-retrace
hot swap, archive round-trip, and swap-event/rung-attribution agreement.

The acceptance test: a 4-rung ladder demotes rung by rung under
injected deadline pressure and promotes all the way back to the primary
once the pressure ends, with every swap a zero-retrace hot swap
(``extract_ir`` is never called after engine construction — asserted by
monkeypatching it to explode).
"""

import io

import pytest

from repro.core import ArchiveReader, pack_archive, pack_model
from repro.hardware import default_devices
from repro.ir import extract_ir
from repro.models import PointPillars
from repro.pointcloud import (LidarConfig, PillarConfig, SceneConfig,
                              SceneGenerator)
from repro.runtime import (DegradationLadder, DegradationPolicy,
                           InferenceEngine, LadderRung, SwapEvent)

RUNG_NAMES = ("lck-16", "lck-8", "hck-8", "hck-4")


def _tiny_pp(seed=0):
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6),
                                   y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=seed)


def _rung(name, seed):
    model = _tiny_pp(seed)
    ir = extract_ir(model, *model.example_inputs())
    return LadderRung(name=name, model=model, ir=ir)


def _ladder(promote_after=3, probation=2, miss_limits=None):
    miss_limits = miss_limits or {}
    rungs = [_rung(name, seed) for seed, name in enumerate(RUNG_NAMES)]
    for rung in rungs:
        rung.miss_limit = miss_limits.get(rung.name)
    return DegradationLadder(rungs, promote_after=promote_after,
                             probation=probation)


def _pressure_hook(miss_until, miss_latency=1.0, hit_latency=1e-9):
    """Deadline pressure for frames below ``miss_until``, relief after."""
    def hook(frame_id, latency, energy):
        if frame_id < miss_until:
            return miss_latency, energy
        return hit_latency, energy
    return hook


def _engine(ladder, hook, deadline_s=0.05, miss_limit=2, batch_size=1):
    return InferenceEngine(
        None, default_devices()["jetson"], deadline_s=deadline_s,
        policy=DegradationPolicy(max_consecutive_misses=miss_limit),
        ladder=ladder, cost_hook=hook, batch_size=batch_size)


@pytest.fixture(scope="module")
def scenes():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    generator = SceneGenerator(cfg, seed=0)
    return [generator.generate(i, with_image=False) for i in range(26)]


def _rung_transitions(report):
    """Per-frame rung attribution distilled into swap transitions."""
    transitions = []
    previous_rung = None
    previous_frame = None
    for record in report.frames:
        if previous_frame is not None and record.rung != previous_rung:
            transitions.append((previous_frame, previous_rung,
                                record.rung))
        previous_rung = record.rung
        previous_frame = record.frame_id
    return transitions


def assert_swaps_match_rungs(report):
    """Every swap event must be visible in the per-frame rung column."""
    transitions = _rung_transitions(report)
    assert len(transitions) == len(report.swap_events)
    for (frame_id, from_rung, to_rung), event in \
            zip(transitions, report.swap_events):
        assert event.frame_id == frame_id
        assert event.from_rung == from_rung
        assert event.to_rung == to_rung


class TestLadderAcceptance:
    """Pressure for 10 frames, relief after: down the ladder and back."""

    def _run(self, scenes, monkeypatch=None, batch_size=1):
        ladder = _ladder(promote_after=3, probation=2)
        engine = _engine(ladder, _pressure_hook(10),
                         batch_size=batch_size)
        if monkeypatch is not None:
            def explode(*args, **kwargs):
                raise AssertionError(
                    "extract_ir called after engine construction — "
                    "a hot swap re-traced")
            import repro.runtime.engine as engine_module
            monkeypatch.setattr(engine_module, "extract_ir", explode)
        return engine, engine.run(scenes)

    def test_demotes_rung_by_rung_and_promotes_back(
            self, scenes, monkeypatch):
        engine, report = self._run(scenes, monkeypatch)
        kinds = [(e.kind, e.from_rung, e.to_rung)
                 for e in report.swap_events]
        assert kinds == [
            ("demote", None, "lck-8"),
            ("demote", "lck-8", "hck-8"),
            ("demote", "hck-8", "hck-4"),
            ("promote", "hck-4", "hck-8"),
            ("promote", "hck-8", "lck-8"),
            ("promote", "lck-8", None),
        ]
        # Back on the primary once the pressure ends, and it stays.
        assert engine.active_rung is None
        assert not engine.on_fallback
        assert report.frames[-1].rung is None

    def test_every_rung_serves_frames(self, scenes, monkeypatch):
        _, report = self._run(scenes, monkeypatch)
        residency = report.rung_residency
        assert set(residency) == {"primary", "lck-8", "hck-8", "hck-4"}
        assert all(count > 0 for count in residency.values())
        assert sum(residency.values()) == len(scenes)

    def test_swap_events_match_frame_rung_transitions(
            self, scenes, monkeypatch):
        _, report = self._run(scenes, monkeypatch)
        assert_swaps_match_rungs(report)
        assert report.demotions == 3
        assert report.promotions == 3

    def test_fallback_flag_tracks_off_primary(self, scenes):
        _, report = self._run(scenes)
        for record in report.frames:
            assert record.fallback == (record.rung is not None)

    def test_summary_reports_the_ladder(self, scenes):
        _, report = self._run(scenes)
        text = report.summary()
        assert "3 demotions" in text
        assert "3 promotions" in text
        assert "primary" in report.ladder_summary()

    def test_batched_window_parity(self, scenes):
        _, sequential = self._run(scenes)
        _, batched = self._run(scenes, batch_size=3)
        assert sequential.frames == batched.frames
        assert sequential.swap_events == batched.swap_events
        for a, b in zip(sequential.predictions, batched.predictions):
            assert len(a.boxes) == len(b.boxes)


class TestLadderPolicy:
    def test_per_rung_miss_limit_overrides_policy(self, scenes):
        # Rung-0 demotes after a single miss; the policy default (3)
        # would have taken three.
        ladder = _ladder(promote_after=0, probation=0,
                         miss_limits={"lck-16": 1})
        engine = _engine(ladder, _pressure_hook(len(scenes)),
                         miss_limit=3)
        report = engine.run(scenes)
        first = report.swap_events[0]
        assert first.frame_id == scenes[0].frame_id
        assert first.to_rung == "lck-8"
        # The next demotion uses the policy default of 3 misses.
        assert report.swap_events[1].frame_id == scenes[3].frame_id

    def test_miss_limit_zero_pins_a_rung(self, scenes):
        ladder = _ladder(promote_after=0, probation=0,
                         miss_limits={"lck-8": 0})
        engine = _engine(ladder, _pressure_hook(len(scenes)))
        report = engine.run(scenes)
        # One demotion onto lck-8, then pinned: 0 disables its watchdog.
        assert [e.to_rung for e in report.swap_events] == ["lck-8"]
        assert engine.active_rung == "lck-8"

    def test_probation_miss_demotes_immediately(self, scenes):
        # Miss frames 0-1 (demote at miss_limit=2), hit 2-4 (promote at
        # promote_after=3), then miss frame 5 inside the probation
        # window: one miss demotes immediately, no 2-miss accumulation.
        def hook(frame_id, latency, energy):
            missing = frame_id in (0, 1, 5)
            return (1.0 if missing else 1e-9), energy
        ladder = _ladder(promote_after=3, probation=2)
        engine = _engine(ladder, hook)
        report = engine.run(scenes)
        kinds = [(e.frame_id, e.kind) for e in report.swap_events]
        assert kinds[:3] == [(1, "demote"), (4, "promote"), (5, "demote")]
        assert_swaps_match_rungs(report)

    def test_no_promotion_when_disabled(self, scenes):
        ladder = _ladder(promote_after=0, probation=0)
        engine = _engine(ladder, _pressure_hook(6))
        report = engine.run(scenes)
        assert report.promotions == 0
        assert engine.on_fallback          # stuck below primary forever
        assert report.frames[-1].rung is not None

    def test_bottom_rung_exhausted_keeps_serving(self, scenes):
        ladder = _ladder(promote_after=0, probation=0)
        engine = _engine(ladder, _pressure_hook(len(scenes)))
        report = engine.run(scenes)
        assert engine.active_rung == RUNG_NAMES[-1]
        assert report.demotions == len(RUNG_NAMES) - 1
        assert report.num_frames == len(scenes)


class TestLadderConstruction:
    def test_rejects_empty_ladder(self):
        with pytest.raises(ValueError, match="at least one"):
            DegradationLadder([])

    def test_rejects_duplicate_rung_names(self):
        with pytest.raises(ValueError, match="duplicate rung names"):
            DegradationLadder([_rung("a", 0), _rung("a", 1)])

    def test_rejects_negative_knobs(self):
        with pytest.raises(ValueError):
            DegradationLadder([_rung("a", 0)], promote_after=-1)

    def test_ladder_and_fallback_model_are_mutually_exclusive(self):
        ladder = DegradationLadder([_rung("a", 0)])
        with pytest.raises(ValueError, match="not both"):
            InferenceEngine(None, default_devices()["jetson"],
                            ladder=ladder, fallback_model=_tiny_pp(1))

    def test_model_must_be_the_primary_rung(self):
        ladder = DegradationLadder([_rung("a", 0)])
        with pytest.raises(ValueError, match="rung-0"):
            InferenceEngine(_tiny_pp(9), default_devices()["jetson"],
                            ladder=ladder)


class TestArchiveLadder:
    @pytest.fixture(scope="class")
    def archive_bytes(self):
        blobs = {}
        for seed, name in enumerate(RUNG_NAMES):
            model = _tiny_pp(seed)
            ir = extract_ir(model, *model.example_inputs())
            blobs[name] = pack_model(model, ir=ir)
        return pack_archive(
            blobs, {name: {"model": "tiny"} for name in RUNG_NAMES})

    def test_from_archive_round_trip_runs_zero_retrace(
            self, archive_bytes, scenes, monkeypatch):
        reader = ArchiveReader(io.BytesIO(archive_bytes))
        ladder = DegradationLadder.from_archive(
            reader, RUNG_NAMES, lambda meta: _tiny_pp(),
            promote_after=3, probation=2)
        engine = _engine(ladder, _pressure_hook(10))

        def explode(*args, **kwargs):
            raise AssertionError("archive ladder re-traced on swap")
        import repro.runtime.engine as engine_module
        monkeypatch.setattr(engine_module, "extract_ir", explode)
        report = engine.run(scenes)
        assert report.demotions == 3
        assert report.promotions == 3
        assert_swaps_match_rungs(report)

    def test_archive_ladder_matches_in_memory_ladder(
            self, archive_bytes, scenes):
        reader = ArchiveReader(io.BytesIO(archive_bytes))
        from_archive = DegradationLadder.from_archive(
            reader, RUNG_NAMES, lambda meta: _tiny_pp(),
            promote_after=3, probation=2)
        via_archive = _engine(from_archive, _pressure_hook(10))
        in_memory = _engine(_ladder(), _pressure_hook(10))
        a, b = via_archive.run(scenes), in_memory.run(scenes)
        assert [r.rung for r in a.frames] == [r.rung for r in b.frames]
        assert a.swap_events == b.swap_events
        for pa, pb in zip(a.predictions, b.predictions):
            assert len(pa.boxes) == len(pb.boxes)

    def test_from_archive_requires_embedded_ir(self):
        model = _tiny_pp(0)
        blob = pack_model(model)            # no ir= → nothing embedded
        reader = ArchiveReader(pack_archive({"bare": blob}))
        with pytest.raises(ValueError, match="no embedded ModelIR"):
            DegradationLadder.from_archive(reader, ["bare"],
                                           lambda meta: _tiny_pp())


class TestLegacyFallbackEquivalence:
    """``fallback_model=`` is exactly a two-rung, never-promote ladder."""

    def _scenes(self, scenes):
        return scenes[:8]

    def test_same_frames_either_way(self, scenes):
        primary, fallback = _tiny_pp(0), _tiny_pp(1)
        hook = _pressure_hook(4)
        legacy = InferenceEngine(
            primary, default_devices()["jetson"], deadline_s=0.05,
            policy=DegradationPolicy(max_consecutive_misses=2),
            fallback_model=fallback, cost_hook=hook)
        ladder = DegradationLadder(
            [LadderRung(name="primary", model=primary),
             LadderRung(name="fallback", model=fallback)],
            promote_after=0, probation=0)
        laddered = InferenceEngine(
            None, default_devices()["jetson"], deadline_s=0.05,
            policy=DegradationPolicy(max_consecutive_misses=2),
            ladder=ladder, cost_hook=hook)
        a = legacy.run(self._scenes(scenes))
        b = laddered.run(self._scenes(scenes))
        assert a.frames == b.frames
        assert a.swap_events == b.swap_events
        assert a.fallback_activations == b.fallback_activations == 1

    def test_legacy_swap_is_recorded_as_a_demotion(self, scenes):
        engine = InferenceEngine(
            _tiny_pp(0), default_devices()["jetson"], deadline_s=0.05,
            policy=DegradationPolicy(max_consecutive_misses=2),
            fallback_model=_tiny_pp(1), cost_hook=_pressure_hook(99))
        report = engine.run(self._scenes(scenes))
        assert report.swap_events == [
            SwapEvent(frame_id=1, kind="demote", from_rung=None,
                      to_rung="fallback")]
        assert engine.active_rung == "fallback"
        assert [r.rung for r in report.frames] \
            == [None, None] + ["fallback"] * 6
