"""Degradation policies, the deadline watchdog, and the chaos acceptance
test: a seeded fault-injected stream completes with counters exactly
matching the injected schedule, twice over."""

import math

import numpy as np
import pytest

from repro.core import (BlobCorruptionError, UPAQCompressor, hck_config,
                        pack_model)
from repro.hardware import default_devices
from repro.models import PointPillars
from repro.pointcloud import (LidarConfig, SceneConfig, SceneGenerator,
                              PillarConfig)
from repro.runtime import (DegradationPolicy, FaultInjector, FaultSpec,
                           InferenceEngine, StreamReport)


def _tiny_pp(seed=0):
    return PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=seed)


@pytest.fixture(scope="module")
def scenes():
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    generator = SceneGenerator(cfg, seed=0)
    return [generator.generate(i, with_image=False) for i in range(20)]


@pytest.fixture(scope="module")
def jetson():
    return default_devices()["jetson"]


class TestChaosAcceptance:
    """Seeded 10% drop / 5% corruption / jitter run, counters exact."""

    SPEC = FaultSpec(drop_rate=0.10, corrupt_rate=0.05,
                     jitter="lognormal", jitter_scale_s=0.002, seed=7)

    def _run(self, scenes, jetson):
        engine = InferenceEngine(_tiny_pp(), jetson, deadline_s=0.1,
                                 fault_injector=FaultInjector(self.SPEC))
        return engine.run(scenes)

    def test_counters_match_injected_schedule(self, scenes, jetson):
        report = self._run(scenes, jetson)
        schedule = FaultInjector(self.SPEC).schedule(
            [s.frame_id for s in scenes])
        expected_dropped = sum(f.dropped for f in schedule)
        expected_degraded = sum(f.corrupted for f in schedule)
        assert report.num_frames == len(scenes)
        assert report.dropped_frames == expected_dropped
        assert report.degraded_frames == expected_degraded
        assert report.ok_frames == len(scenes) - expected_dropped \
            - expected_degraded
        assert len(report.predictions) == len(scenes)
        # The jitter of every processed frame lands in its latency.
        by_id = {f.frame_id: f for f in schedule}
        base = InferenceEngine(_tiny_pp(), jetson).frame_cost()[0]
        for record in report.frames:
            if record.status == "ok":
                assert record.device_latency_s == pytest.approx(
                    base + by_id[record.frame_id].jitter_s)
            else:
                assert record.device_latency_s == 0.0

    def test_same_seed_runs_are_identical(self, scenes, jetson):
        a = self._run(scenes, jetson)
        b = self._run(scenes, jetson)
        assert a.frames == b.frames
        assert a.status_counts == b.status_counts
        assert a.deadline_hit_rate == b.deadline_hit_rate
        for pa, pb in zip(a.predictions, b.predictions):
            assert len(pa.boxes) == len(pb.boxes)

    def test_status_counts_partition_the_stream(self, scenes, jetson):
        report = self._run(scenes, jetson)
        counts = report.status_counts
        assert sum(counts.values()) == report.num_frames
        assert set(counts) == {"ok", "degraded", "dropped", "failed"}
        # "failed" only ever comes from serving-window crashes, never
        # from chaos injection on a solo engine.
        assert counts["failed"] == 0


class TestDegradationPolicy:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            DegradationPolicy(on_corrupt="retry")
        with pytest.raises(ValueError):
            DegradationPolicy(max_consecutive_misses=-1)

    def test_last_good_holds_previous_detections(self, scenes, jetson):
        injector = FaultInjector(FaultSpec(corrupt_rate=1.0, seed=0))
        engine = InferenceEngine(_tiny_pp(), jetson,
                                 fault_injector=injector)
        clean_first = engine.model.predict(scenes[0])
        # First frame corrupt with no last-good → empty; stream a clean
        # engine over [clean, corrupt] to see the hold.
        held_engine = InferenceEngine(
            _tiny_pp(), jetson,
            policy=DegradationPolicy(on_corrupt="last_good"))
        corrupt = scenes[1]
        poisoned = injector.apply(corrupt, injector.faults_for(
            corrupt.frame_id))
        report = held_engine.run([scenes[0], poisoned])
        assert [f.status for f in report.frames] == ["ok", "degraded"]
        assert len(report.predictions[1].boxes) == len(clean_first.boxes)
        assert report.predictions[1].frame_id == corrupt.frame_id

    def test_skip_policy_marks_dropped(self, scenes, jetson):
        engine = InferenceEngine(
            _tiny_pp(), jetson,
            policy=DegradationPolicy(on_corrupt="skip"),
            fault_injector=FaultInjector(FaultSpec(corrupt_rate=1.0,
                                                   seed=0)))
        report = engine.run(scenes[:3])
        assert all(f.status == "dropped" for f in report.frames)
        assert all(not p.boxes for p in report.predictions)

    def test_nan_frames_detected_without_injector(self, scenes, jetson):
        """A corrupt frame from the wild (no injector) still degrades."""
        import copy
        poisoned = copy.copy(scenes[0])
        poisoned.points = scenes[0].points.copy()
        poisoned.points[0, 2] = np.nan
        engine = InferenceEngine(_tiny_pp(), jetson)
        report = engine.run([poisoned])
        assert report.frames[0].status == "degraded"


class TestDeadlineWatchdog:
    def test_fallback_swap_after_consecutive_misses(self, scenes, jetson):
        model = _tiny_pp()
        compressed = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs()).model
        # Deadline between the compressed and uncompressed cost: the
        # primary misses every frame, the fallback recovers.
        slow_engine = InferenceEngine(_tiny_pp(), jetson)
        fast_engine = InferenceEngine(compressed, jetson)
        slow_cost = slow_engine.frame_cost()[0]
        fast_cost = fast_engine.frame_cost()[0]
        deadline = (slow_cost + fast_cost) / 2
        engine = InferenceEngine(
            _tiny_pp(), jetson, deadline_s=deadline,
            policy=DegradationPolicy(max_consecutive_misses=3),
            fallback_model=compressed)
        report = engine.run(scenes[:8])
        assert engine.on_fallback
        assert report.fallback_activations == 1
        statuses = [(f.deadline_met, f.fallback) for f in report.frames]
        # Three misses on the primary, then the fallback meets it.
        assert statuses[:3] == [(False, False)] * 3
        assert all(met and fb for met, fb in statuses[3:])

    def test_watchdog_disabled_without_fallback(self, scenes, jetson):
        engine = InferenceEngine(
            _tiny_pp(), jetson, deadline_s=1e-9,
            policy=DegradationPolicy(max_consecutive_misses=2))
        report = engine.run(scenes[:5])
        assert not engine.on_fallback
        assert report.fallback_activations == 0
        assert report.deadline_hit_rate == 0.0

    def test_miss_limit_zero_never_swaps(self, scenes, jetson):
        engine = InferenceEngine(
            _tiny_pp(), jetson, deadline_s=1e-9,
            policy=DegradationPolicy(max_consecutive_misses=0),
            fallback_model=_tiny_pp())
        engine.run(scenes[:4])
        assert not engine.on_fallback


class TestPerFrameCost:
    def test_cost_hook_varies_each_frame(self, scenes, jetson):
        calls = []

        def hook(frame_id, latency, energy):
            calls.append(frame_id)
            return latency * (1 + frame_id), energy

        engine = InferenceEngine(_tiny_pp(), jetson, deadline_s=10.0,
                                 cost_hook=hook)
        report = engine.run(scenes[:3])
        assert calls == [s.frame_id for s in scenes[:3]]
        latencies = [f.device_latency_s for f in report.frames]
        assert latencies[0] < latencies[1] < latencies[2]

    def test_deadline_evaluated_per_frame(self, scenes, jetson):
        """A hook pushing one frame over the deadline flags only it."""
        base = InferenceEngine(_tiny_pp(), jetson).frame_cost()[0]

        def hook(frame_id, latency, energy):
            return (latency * 100 if frame_id == 1 else latency), energy

        engine = InferenceEngine(_tiny_pp(), jetson, deadline_s=base * 2,
                                 cost_hook=hook)
        report = engine.run(scenes[:3])
        assert [f.deadline_met for f in report.frames] == \
            [True, False, True]

    def test_bare_frame_cost_bypasses_hook(self, jetson):
        engine = InferenceEngine(
            _tiny_pp(), jetson,
            cost_hook=lambda i, lat, en: (lat * 999, en))
        direct = engine.frame_cost()
        hooked = engine.frame_cost(frame_id=0)
        assert hooked[0] == pytest.approx(direct[0] * 999)


class TestEmptyStream:
    def test_hit_rate_is_nan(self):
        assert math.isnan(StreamReport().deadline_hit_rate)

    def test_engine_run_on_empty_iterable(self, jetson):
        report = InferenceEngine(_tiny_pp(), jetson).run([])
        assert report.num_frames == 0
        assert math.isnan(report.deadline_hit_rate)

    def test_evaluate_raises_with_clear_message(self, jetson):
        report = InferenceEngine(_tiny_pp(), jetson).run([])
        with pytest.raises(ValueError, match="empty stream"):
            report.evaluate([])

    def test_fully_dropped_stream_has_nan_hit_rate(self, scenes, jetson):
        engine = InferenceEngine(
            _tiny_pp(), jetson,
            fault_injector=FaultInjector(FaultSpec(drop_rate=1.0, seed=0)))
        report = engine.run(scenes[:4])
        assert report.dropped_frames == 4
        assert math.isnan(report.deadline_hit_rate)


class TestFromPacked:
    """Satellite: pack → corrupt → restore raises; clean round trip
    predicts identically."""

    def _compressed_blob_and_model(self):
        model = _tiny_pp()
        report = UPAQCompressor(hck_config()).compress(
            model, *model.example_inputs())
        return pack_model(report.model), report.model

    def test_corrupt_byte_raises_blob_corruption(self, jetson):
        blob, _ = self._compressed_blob_and_model()
        mutated = bytearray(blob)
        mutated[len(mutated) // 2] ^= 0xFF
        with pytest.raises(BlobCorruptionError):
            InferenceEngine.from_packed(bytes(mutated), _tiny_pp(), jetson)

    def test_clean_roundtrip_predicts_identically(self, scenes, jetson):
        blob, compressed = self._compressed_blob_and_model()
        engine = InferenceEngine.from_packed(blob, _tiny_pp(), jetson)
        for scene in scenes[:3]:
            direct = compressed.predict(scene)
            restored = engine.model.predict(scene)
            assert len(direct.boxes) == len(restored.boxes)
            for a, b in zip(direct.boxes, restored.boxes):
                assert a.score == pytest.approx(b.score)
                assert (a.x, a.y, a.z) == \
                    pytest.approx((b.x, b.y, b.z))

    def test_from_packed_forwards_engine_kwargs(self, jetson):
        blob, _ = self._compressed_blob_and_model()
        injector = FaultInjector(FaultSpec(drop_rate=1.0, seed=0))
        engine = InferenceEngine.from_packed(
            blob, _tiny_pp(), jetson, fault_injector=injector,
            policy=DegradationPolicy(on_corrupt="skip"))
        assert engine.fault_injector is injector
        assert engine.policy.on_corrupt == "skip"
