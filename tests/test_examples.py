"""Every fast example must run end-to-end as a subprocess.

The two training examples (compress_lidar_detector,
compress_camera_detector) are exercised by the benchmark harness through
the same code paths and are too slow for unit tests.
"""

import os
import subprocess
import sys

import pytest

_ROOT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..")

FAST_EXAMPLES = [
    "quickstart.py",
    "kitti_roundtrip.py",
    "deploy_energy_profile.py",
    "streaming_deployment.py",
    "sensitivity_and_distillation.py",
]


@pytest.mark.slow
@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(_ROOT, "examples", script)],
        capture_output=True, text=True, timeout=420, cwd=_ROOT)
    assert result.returncode == 0, \
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip(), f"{script} produced no output"


@pytest.mark.slow
def test_quickstart_reports_compression():
    result = subprocess.run(
        [sys.executable, os.path.join(_ROOT, "examples", "quickstart.py")],
        capture_output=True, text=True, timeout=420, cwd=_ROOT)
    assert "UPAQ (HCK)" in result.stdout
    assert "x smaller" in result.stdout
