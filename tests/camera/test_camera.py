"""Tests for the pinhole camera model and synthetic renderer."""

import numpy as np
import pytest

from repro.camera import (CameraModel, box_fully_visible, project_box,
                          project_points, render_scene)
from repro.pointcloud import Box3D


@pytest.fixture
def camera():
    return CameraModel.kitti_like(width=128, height=40)


class TestProjection:
    def test_point_on_axis_hits_principal_point(self, camera):
        # A point straight ahead at sensor height projects to the center.
        point = np.array([[20.0, 0.0, camera.mount_height]])
        pixels, depth = project_points(point, camera)
        assert depth[0] == pytest.approx(20.0)
        assert pixels[0, 0] == pytest.approx(camera.width / 2)
        assert pixels[0, 1] == pytest.approx(camera.height / 2)

    def test_left_object_projects_left(self, camera):
        # +y is left in vehicle coords → smaller u in image coords.
        left = np.array([[20.0, 3.0, 1.0]])
        right = np.array([[20.0, -3.0, 1.0]])
        u_left = project_points(left, camera)[0][0, 0]
        u_right = project_points(right, camera)[0][0, 0]
        assert u_left < camera.width / 2 < u_right

    def test_higher_object_projects_higher(self, camera):
        high = np.array([[20.0, 0.0, 2.5]])
        low = np.array([[20.0, 0.0, 0.2]])
        v_high = project_points(high, camera)[0][0, 1]
        v_low = project_points(low, camera)[0][0, 1]
        assert v_high < v_low   # image v grows downward

    def test_farther_is_smaller(self, camera):
        near = Box3D(10, 0, 1, 4, 2, 2, 0)
        far = Box3D(40, 0, 1, 4, 2, 2, 0)
        near_box = project_box(near, camera)
        far_box = project_box(far, camera)
        near_w = near_box[2] - near_box[0]
        far_w = far_box[2] - far_box[0]
        assert near_w > far_w * 2

    def test_behind_camera_returns_none(self, camera):
        behind = Box3D(-10, 0, 1, 4, 2, 2, 0)
        assert project_box(behind, camera) is None

    def test_fully_visible(self, camera):
        centered = Box3D(25, 0, 1, 4, 2, 2, 0)
        off_screen = Box3D(5, 20, 1, 4, 2, 2, 0)
        assert box_fully_visible(centered, camera)
        assert not box_fully_visible(off_screen, camera)


class TestRenderer:
    def test_image_shape_and_range(self, camera):
        boxes = [Box3D(15, 0, 0.8, 3.9, 1.6, 1.56, 0, label="Car")]
        image = render_scene(camera, boxes)
        assert image.shape == (3, camera.height, camera.width)
        assert image.dtype == np.float32
        assert image.min() >= 0.0
        assert image.max() <= 1.0

    def test_object_changes_pixels(self, camera):
        empty = render_scene(camera, [], rng=np.random.default_rng(0))
        with_car = render_scene(
            camera, [Box3D(15, 0, 0.8, 3.9, 1.6, 1.56, 0, label="Car")],
            rng=np.random.default_rng(0))
        assert np.abs(empty - with_car).sum() > 1.0

    def test_car_painted_at_projection(self, camera):
        car = Box3D(15, 0, 0.8, 3.9, 1.6, 1.56, 0, label="Car")
        image = render_scene(camera, [car])
        bbox = project_box(car, camera)
        u = int((bbox[0] + bbox[2]) / 2)
        v = int((bbox[1] + bbox[3]) / 2)
        pixel = image[:, v, u]
        # Cars are painted blue-dominant in the synthetic renderer.
        assert pixel[2] > pixel[0]

    def test_near_object_occludes_far(self, camera):
        near = Box3D(10, 0, 1.0, 4, 2.4, 2.0, 0, label="Car")
        far = Box3D(12, 0, 0.9, 4, 2.0, 1.8, 0, label="Pedestrian")
        image = render_scene(camera, [near, far])
        bbox = project_box(near, camera)
        u = int(np.clip((bbox[0] + bbox[2]) / 2, 0, camera.width - 1))
        v = int(np.clip((bbox[1] + bbox[3]) / 2, 0, camera.height - 1))
        pixel = image[:, v, u]
        assert pixel[2] > pixel[0]   # near (blue car) wins the pixel
