"""End-to-end CLI workflow tests with miniature budgets."""

import importlib
import os

import pytest

from repro.cli import main


@pytest.fixture
def isolated_artifacts(tmp_path, monkeypatch):
    pretrain = importlib.import_module("repro.harness.pretrain")
    monkeypatch.setattr(pretrain, "_ARTIFACT_DIR", str(tmp_path))
    return tmp_path


@pytest.mark.slow
class TestCliWorkflows:
    def test_train_then_cache_hit(self, isolated_artifacts, capsys):
        assert main(["train", "--model", "pointpillars",
                     "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "trained pointpillars" in out
        assert main(["train", "--model", "pointpillars",
                     "--steps", "2"]) == 0
        out = capsys.readouterr().out
        assert "cached" in out

    def test_compress_writes_packed_model(self, isolated_artifacts,
                                          tmp_path, capsys):
        packed = str(tmp_path / "model.upaq")
        assert main(["compress", "--model", "pointpillars", "--steps", "2",
                     "--preset", "lck", "--out", packed]) == 0
        out = capsys.readouterr().out
        assert "UPAQ (LCK)" in out
        assert os.path.getsize(packed) > 1000
        # The blob restores into a fresh engine.
        from repro.core import unpack_model
        from repro.models import build_model
        with open(packed, "rb") as handle:
            unpack_model(handle.read(), build_model("pointpillars"))

    def test_evaluate_prints_buckets(self, isolated_artifacts, capsys):
        assert main(["evaluate", "--model", "pointpillars", "--steps", "2",
                     "--frames", "1"]) == 0
        out = capsys.readouterr().out
        for bucket in ("easy", "moderate", "hard"):
            assert bucket in out
