"""Regenerates Table 1: model size vs execution time for all five ODs."""

import pytest

from repro.harness import format_table1, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_model_size_vs_latency(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print("\n" + format_table1(rows))

    by_name = {row.model: row for row in rows}
    # Paper's ordering: PointPillars < SECOND < Focals Conv < SMOKE < VSC
    # in parameters, and PointPillars fastest / VSC slowest.
    assert by_name["PointPillars"].params < by_name["SECOND"].params
    assert by_name["SECOND"].params < by_name["Focals Conv"].params
    assert by_name["Focals Conv"].params < by_name["SMOKE"].params
    assert by_name["SMOKE"].params < by_name["VSC"].params
    assert by_name["PointPillars"].exec_ms == min(r.exec_ms for r in rows)
    assert by_name["VSC"].exec_ms == max(r.exec_ms for r in rows)
