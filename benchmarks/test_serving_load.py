"""Load-generator benchmark: multi-stream serving vs independent engines.

Drives a :class:`~repro.runtime.serving.ServingEngine` with N
concurrent synthetic client streams and compares aggregate throughput
against the no-serving deployment — one independent per-frame
:class:`~repro.runtime.engine.InferenceEngine` per client, run
back-to-back.  The serving side wins by filling ``batch_size=N``
micro-batch windows with frames from *different* streams (one gather +
one gemm per layer instead of N), which a single-client engine can
never do.

Also reports wall-clock service latency (submit → record emitted)
p50/p99 at two offered loads: unthrottled, and paced at ~75% of the
measured unthrottled capacity — the latency-vs-load curve a capacity
planner actually reads.

Writes the ``serving`` and ``serving_process`` sections of
``BENCH_throughput.json``.  The per-stream reports under the scheduler
are byte-equal to solo runs (pinned by
``tests/runtime/test_serving.py`` and
``tests/runtime/test_serving_process.py``), so this file only
measures — plus guards that the optimizations actually pay:

* cross-stream batching: >= 1.0x aggregate throughput vs independent
  engines (0.8x under ``REPRO_BENCH_TINY=1`` where runs are sized for
  shared CI runners and the effect is inside scheduler noise);
* the process backend: >= 3.0x aggregate throughput at 4 replicas vs
  the single-replica thread backend — *when the host actually has 4
  cores to scale onto*.  Process replicas buy parallelism, not
  per-frame speed, so on fewer cores the honest expectation is
  parity, and the floor relaxes to 0.8x (the recorded entry carries
  ``cpus`` so a reader can tell which regime produced it).

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_serving_load.py -q``.
"""

import json
import os
import time

import numpy as np

from repro.core import UPAQCompressor, hck_config
from repro.hardware import default_devices
from repro.models import PointPillars
from repro.pointcloud import (LidarConfig, PillarConfig, SceneConfig,
                              SceneGenerator)
from repro.runtime import InferenceEngine, ServingEngine

TINY = os.environ.get("REPRO_BENCH_TINY", "0") == "1"
STREAMS = 4
FRAMES = 4 if TINY else 12
REPEATS = 1 if TINY else 2
OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                        "BENCH_throughput.json")


def _merge_report(update: dict) -> dict:
    report = {}
    if os.path.exists(OUT_PATH):
        with open(OUT_PATH) as handle:
            report = json.load(handle)
    report.update(update)
    with open(OUT_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def _compressed_tiny():
    model = PointPillars(
        pillar_config=PillarConfig(x_range=(0, 25.6), y_range=(-12.8, 12.8)),
        pfn_channels=8, stage_channels=(8, 16, 32), stage_depths=(1, 1, 1),
        upsample_channels=8, seed=1)
    report = UPAQCompressor(hck_config()).compress(
        model, *model.example_inputs())
    report.model.eval()
    return report


def _streams(prefix: str):
    cfg = SceneConfig(x_range=(5, 24), y_range=(-10, 10),
                      lidar=LidarConfig(channels=10, azimuth_steps=80))
    streams = {}
    for index in range(STREAMS):
        generator = SceneGenerator(cfg, seed=index)
        streams[f"{prefix}{index}"] = [
            generator.generate(1000 * index + frame, with_image=False)
            for frame in range(FRAMES)]
    return streams


def _percentiles(latencies):
    if not latencies:
        return 0.0, 0.0
    return (float(np.percentile(latencies, 50)) * 1e3,
            float(np.percentile(latencies, 99)) * 1e3)


def test_serving_load_report():
    compressed = _compressed_tiny()
    jetson = default_devices()["jetson"]
    total_frames = STREAMS * FRAMES

    # Baseline: one independent per-frame engine per client, no
    # cross-stream batching possible.  Warm each engine's compiled
    # state before timing, exactly like the serving side.
    engines = {}
    warm = _streams("warm")
    for name, scenes in zip(_streams("base"), warm.values()):
        engine = InferenceEngine(compressed.model, jetson,
                                 ir=compressed.ir, execution="lowered",
                                 batch_size=1)
        engine.run(scenes[:1])
        engines[name] = engine
    base_streams = _streams("base")
    independent_s = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for name, scenes in base_streams.items():
            engines[name].run(scenes)
        independent_s = min(independent_s,
                            time.perf_counter() - start)
    independent_fps = total_frames / independent_s

    # Serving: the same four client streams, concurrent, batched
    # across streams into batch_size=4 windows.
    engine = InferenceEngine(compressed.model, jetson, ir=compressed.ir,
                             execution="lowered", batch_size=STREAMS)
    serving = ServingEngine(engine, max_streams=2 * STREAMS + 2)
    serving.serve({name: scenes[:1]
                   for name, scenes in warm.items()})      # warm plans
    serving_s = float("inf")
    latencies = []
    cross_windows = 0
    for repeat in range(REPEATS):
        streams = _streams(f"run{repeat}-")
        before = serving.stats().cross_stream_windows
        start = time.perf_counter()
        serving.serve(streams)
        elapsed = time.perf_counter() - start
        if elapsed < serving_s:
            serving_s = elapsed
            latencies = [lat for name in streams
                         for lat in serving.service_latencies(name)]
        cross_windows = serving.stats().cross_stream_windows - before
    serving_fps = total_frames / serving_s
    p50_ms, p99_ms = _percentiles(latencies)

    # Latency vs offered load: pace each client at ~75% of measured
    # per-stream capacity and read the p50/p99 the planner would see.
    paced_rate = serving_fps / STREAMS * 0.75
    paced_streams = _streams("paced")
    start = time.perf_counter()
    serving.serve(paced_streams, interval_s=1.0 / paced_rate)
    paced_elapsed = time.perf_counter() - start
    paced_latencies = [lat for name in paced_streams
                       for lat in serving.service_latencies(name)]
    paced_p50_ms, paced_p99_ms = _percentiles(paced_latencies)
    serving.shutdown()

    speedup = serving_fps / independent_fps
    report = {"serving": {
        "tiny": TINY,
        "streams": STREAMS,
        "frames_per_stream": FRAMES,
        "independent_fps": independent_fps,
        "serving_fps": serving_fps,
        "serving_speedup_vs_independent": speedup,
        "cross_stream_windows": cross_windows,
        "latency_vs_load": {
            "unthrottled": {
                "offered_fps_per_stream": None,
                "service_p50_ms": p50_ms,
                "service_p99_ms": p99_ms,
            },
            "paced_75pct": {
                "offered_fps_per_stream": paced_rate,
                "achieved_fps": total_frames / paced_elapsed,
                "service_p50_ms": paced_p50_ms,
                "service_p99_ms": paced_p99_ms,
            },
        },
    }}
    _merge_report(report)

    print(f"\nserving: independent {independent_fps:.2f} fps, "
          f"serving {serving_fps:.2f} fps ({speedup:.2f}x), "
          f"{cross_windows} cross-stream windows")
    print(f"service latency p50/p99: unthrottled "
          f"{p50_ms:.1f}/{p99_ms:.1f} ms, paced@{paced_rate:.2f}fps "
          f"{paced_p50_ms:.1f}/{paced_p99_ms:.1f} ms")

    # Cross-stream batching must actually form windows and pay on
    # aggregate throughput.  (Strict win outside TINY; shared CI
    # runners only have to stay in the same ballpark.)
    assert cross_windows > 0, "no cross-stream window ever formed"
    floor = 0.8 if TINY else 1.0
    assert speedup >= floor, (
        f"serving only {speedup:.2f}x over {STREAMS} independent "
        f"engines (floor {floor}x)")


def test_process_backend_throughput_report():
    """GIL-cap benchmark: 4 process replicas vs 1 thread replica.

    Both sides run ``batch_size=1`` windows so the measurement
    isolates window *parallelism* (what process replicas add) from
    cross-stream batching (measured above).  The thread baseline with
    one replica is exactly the GIL-capped deployment the process
    backend exists to break.
    """
    compressed = _compressed_tiny()
    jetson = default_devices()["jetson"]
    cpus = os.cpu_count() or 1
    replicas = 4
    total_frames = STREAMS * FRAMES

    def build_engine():
        return InferenceEngine(compressed.model, jetson,
                               ir=compressed.ir, execution="lowered",
                               batch_size=1)

    def measure(backend, replicas):
        serving = ServingEngine(build_engine(), backend=backend,
                                replicas=replicas,
                                max_streams=2 * STREAMS + 2)
        warm = _streams(f"warm-{backend}-")
        serving.serve({name: scenes[:1]
                       for name, scenes in warm.items()})
        best = float("inf")
        for repeat in range(REPEATS):
            streams = _streams(f"{backend}{repeat}-")
            start = time.perf_counter()
            serving.serve(streams)
            best = min(best, time.perf_counter() - start)
        stats = serving.stats()
        serving.shutdown()
        return total_frames / best, stats

    thread_fps, _ = measure("thread", 1)
    process_fps, stats = measure("process", replicas)
    assert stats.backend == "process", \
        "process backend silently fell back to threads"
    speedup = process_fps / thread_fps

    _merge_report({"serving_process": {
        "tiny": TINY,
        "cpus": cpus,
        "streams": STREAMS,
        "frames_per_stream": FRAMES,
        "replicas": stats.replicas,
        "backend": stats.backend,
        "thread_1replica_fps": thread_fps,
        "process_fps": process_fps,
        "process_speedup_vs_thread": speedup,
        "windows_by_replica": stats.windows_by_replica,
        "pool_failures": stats.pool_failures,
        "window_timeouts": stats.window_timeouts,
    }})

    print(f"\nprocess backend: thread/1 {thread_fps:.2f} fps, "
          f"process/{replicas} {process_fps:.2f} fps "
          f"({speedup:.2f}x) on {cpus} cpu(s), "
          f"windows by replica {stats.windows_by_replica}")

    # Honest scaling floor: 4 replicas can only beat 1 when the host
    # has cores for them.  With >= 4 cores and a non-tiny run the
    # optimization must deliver >= 3x; otherwise demand parity-ish
    # (process IPC overhead stays bounded).
    floor = 3.0 if (not TINY and cpus >= 4) else 0.8
    assert speedup >= floor, (
        f"process backend only {speedup:.2f}x over the single-replica "
        f"thread backend on {cpus} cpu(s) (floor {floor}x)")
