"""Extension bench: knowledge-distillation fine-tuning (paper future work).

The paper's conclusion lists combining UPAQ with further deep-learning
techniques as ongoing work.  This bench measures the KD extension:
fine-tuning the compressed student under the dense teacher's supervision
versus plain label-only fine-tuning, at identical epoch budgets.
At full scale the measured gain is substantial (LCK: 12.6 → 18.9 mAP).
"""

import pytest

from repro.core import (DistillConfig, UPAQCompressor, distill_finetune,
                        lck_config)
from repro.harness import (TrainConfig, evaluate_model_map, get_pretrained,
                           training_scenes, validation_scenes)

from bench_config import budget


@pytest.mark.benchmark(group="extension")
def test_distillation_beats_plain_finetune(benchmark):
    b = budget()
    teacher, _ = get_pretrained(
        "pointpillars", TrainConfig(steps=b["pretrain_steps"]))
    inputs = teacher.example_inputs()
    val = validation_scenes(b["eval_frames"], with_image=False)
    finetune = training_scenes(b["finetune_scenes"], with_image=False,
                               start=500_000)
    compressor = UPAQCompressor(lck_config())

    plain = compressor.compress(teacher, *inputs)
    compressor.finetune(plain, finetune, epochs=b["finetune_epochs"])
    plain_map = evaluate_model_map(plain.model, val)

    distilled = compressor.compress(teacher, *inputs)
    benchmark.pedantic(
        distill_finetune,
        args=(distilled, teacher, finetune),
        kwargs={"config": DistillConfig(epochs=b["finetune_epochs"])},
        rounds=1, iterations=1)
    distilled_map = evaluate_model_map(distilled.model, val)

    print(f"\nKD extension: plain fine-tune mAP={plain_map:.2f}, "
          f"distilled mAP={distilled_map:.2f} "
          f"(ratio {distilled.compression_ratio:.2f}x)")
    # Same compression either way; KD must not hurt and usually helps.
    assert distilled.compression_ratio == pytest.approx(
        plain.compression_ratio, rel=0.05)
    assert distilled_map >= plain_map * 0.7 - 1.0
