"""Regenerates Table 2 for SMOKE (camera-based 3D detection)."""

import pytest

from repro.core import UPAQCompressor, hck_config
from repro.harness import format_table2
from repro.models import SMOKE


@pytest.mark.benchmark(group="table2")
def test_table2_smoke(benchmark, table2_smoke):
    rows = table2_smoke
    print("\n" + format_table2("SMOKE", rows))

    by_name = {row.framework: row for row in rows}
    hck = by_name["UPAQ (HCK)"]
    lck = by_name["UPAQ (LCK)"]

    assert hck.compression == max(r.compression for r in rows)
    for name in ("Ps&Qs", "CLIP-Q", "LiDAR-PTQ"):
        assert lck.compression > by_name[name].compression
    assert hck.jetson_ms == min(r.jetson_ms for r in rows)
    assert hck.jetson_j <= min(r.jetson_j for r in rows) * 1.01

    model = SMOKE(seed=0)
    inputs = model.example_inputs()
    result = benchmark(
        lambda: UPAQCompressor(hck_config()).compress(model, *inputs))
    assert result.compression_ratio > 3.0
