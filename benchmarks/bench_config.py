"""Benchmark scale budgets, shared by conftest and benchmark modules.

``REPRO_BENCH_SCALE=quick`` (default) regenerates everything in minutes;
``full`` uses the budgets recorded in EXPERIMENTS.md.
"""

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

_BUDGETS = {
    "quick": dict(pretrain_steps=300, finetune_scenes=6, finetune_epochs=1,
                  eval_frames=4),
    "full": dict(pretrain_steps=6400, finetune_scenes=24, finetune_epochs=3,
                 eval_frames=12),
}
# SMOKE steps cost ~3× PointPillars steps; trim its budget accordingly.
_SMOKE_BUDGETS = {
    "quick": dict(pretrain_steps=200, finetune_scenes=4, finetune_epochs=1,
                  eval_frames=4),
    "full": dict(pretrain_steps=1500, finetune_scenes=24, finetune_epochs=3,
                 eval_frames=10),
}


def budget(model_name: str = "pointpillars") -> dict:
    table = _SMOKE_BUDGETS if model_name == "smoke" else _BUDGETS
    return dict(table[SCALE])
