"""Regenerates Fig 1 (motivation): LiDAR vs camera detection coverage.

The paper's Fig 1 shows SMOKE failing to detect foreground/background
objects that PointPillars finds.  We count ground-truth objects each
detector recovers on shared scenes.
"""

import pytest

from repro.harness import (TrainConfig, detection_count_comparison,
                           format_fig1, get_pretrained, validation_scenes)

from bench_config import budget


@pytest.mark.benchmark(group="fig1")
def test_fig1_lidar_vs_camera_coverage(benchmark):
    pp, _ = get_pretrained(
        "pointpillars", TrainConfig(steps=budget()["pretrain_steps"]))
    smoke, _ = get_pretrained(
        "smoke", TrainConfig(steps=budget("smoke")["pretrain_steps"],
                             with_image=True))
    scenes = validation_scenes(4, with_image=True)

    counts = benchmark.pedantic(
        detection_count_comparison, args=(scenes, pp, smoke),
        rounds=1, iterations=1)
    print("\n" + format_fig1(counts))

    assert counts["total_gt"] > 0
    assert counts["lidar_found"] >= 0
    # The paper's qualitative claim — the LiDAR detector covers at least
    # as much of the scene as the monocular one — needs trained
    # detectors; at quick scale both are barely trained and the
    # comparison is noise.
    from bench_config import SCALE
    if SCALE == "full":
        assert counts["lidar_found"] >= counts["camera_found"]
