"""Regenerates Table 2 for PointPillars: all frameworks, all metrics."""

import pytest

from repro.core import UPAQCompressor, hck_config
from repro.harness import format_table2
from repro.models import PointPillars


@pytest.mark.benchmark(group="table2")
def test_table2_pointpillars(benchmark, table2_pointpillars):
    rows = table2_pointpillars
    print("\n" + format_table2("PointPillars", rows))

    by_name = {row.framework: row for row in rows}
    hck = by_name["UPAQ (HCK)"]
    lck = by_name["UPAQ (LCK)"]

    # Shape assertions mirroring the paper's claims:
    # HCK achieves the highest compression ratio of all frameworks.
    assert hck.compression == max(r.compression for r in rows)
    # Both UPAQ variants compress more than every baseline.
    for name in ("Ps&Qs", "CLIP-Q", "R-TOSS", "LiDAR-PTQ"):
        assert lck.compression > by_name[name].compression
    # UPAQ is the fastest and most energy-efficient on the Jetson.
    assert hck.jetson_ms == min(r.jetson_ms for r in rows)
    assert hck.jetson_j == min(r.jetson_j for r in rows)
    # Weak baselines (~2x class): Ps&Qs and CLIP-Q land well below R-TOSS.
    assert by_name["Ps&Qs"].compression < by_name["R-TOSS"].compression

    # The benchmarked kernel: one full UPAQ compression pass.
    model = PointPillars(seed=0)
    inputs = model.example_inputs()
    result = benchmark(
        lambda: UPAQCompressor(hck_config()).compress(model, *inputs))
    assert result.compression_ratio > 3.0
