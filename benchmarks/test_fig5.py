"""Regenerates Fig 5: energy-usage reductions on the Jetson Orin Nano."""

import pytest

from repro.harness import energy_reductions, format_fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_energy_pointpillars(benchmark, table2_pointpillars):
    factors = benchmark(energy_reductions, table2_pointpillars)
    print("\n" + format_fig5("PointPillars", table2_pointpillars))
    # Paper Fig 5(a): UPAQ most efficient (≈2×); R-TOSS ≈ 1×.
    assert factors["UPAQ (HCK)"] == max(factors.values())
    assert factors["UPAQ (HCK)"] > 1.5
    assert abs(factors["R-TOSS"] - 1.0) < 0.15
    assert factors["UPAQ (LCK)"] > factors["Ps&Qs"]


@pytest.mark.benchmark(group="fig5")
def test_fig5_energy_smoke(benchmark, table2_smoke):
    factors = benchmark(energy_reductions, table2_smoke)
    print("\n" + format_fig5("SMOKE", table2_smoke))
    assert factors["UPAQ (HCK)"] >= factors["UPAQ (LCK)"] * 0.99
    assert factors["UPAQ (HCK)"] > 1.4
