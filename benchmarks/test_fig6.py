"""Regenerates Fig 6: qualitative BEV detections vs ground truth.

Compares the base PointPillars with R-TOSS and both UPAQ variants on a
held-out scene — ASCII bird's-eye views plus alignment statistics
(detected count, center error, extraneous predictions), quantifying the
paper's visual claims.
"""

import pytest

from repro.baselines import RToss
from repro.core import UPAQCompressor, hck_config, lck_config
from repro.harness import (alignment_report, format_fig6, get_pretrained,
                           TrainConfig, training_scenes, validation_scenes)

from bench_config import budget


@pytest.mark.benchmark(group="fig6")
def test_fig6_qualitative_bev(benchmark):
    b = budget()
    model, _ = get_pretrained(
        "pointpillars", TrainConfig(steps=b["pretrain_steps"]))
    inputs = model.example_inputs()
    scene = validation_scenes(3, with_image=False)[-1]
    finetune = training_scenes(b["finetune_scenes"], with_image=False,
                               start=500_000)

    # A permissive score threshold keeps the qualitative figure
    # populated even for lightly trained quick-scale checkpoints.
    model.score_threshold = 0.05
    predictions = {"Base Model": model.predict(scene).boxes}
    for name, framework in (
            ("R-TOSS", RToss()),
            ("UPAQ (LCK)", UPAQCompressor(lck_config())),
            ("UPAQ (HCK)", UPAQCompressor(hck_config()))):
        report = framework.compress(model, *inputs)
        framework.finetune(report, finetune, epochs=b["finetune_epochs"])
        report.model.score_threshold = 0.05
        predictions[name] = report.model.predict(scene).boxes

    print("\n" + format_fig6(scene, predictions))

    # Also emit the figure as actual images (artifacts/figures/*.ppm).
    import os
    from repro.viz import render_fig6_image
    fig_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "..", "artifacts", "figures")
    for name, boxes in predictions.items():
        slug = name.lower().replace(" ", "_").replace("(", "") \
            .replace(")", "")
        render_fig6_image(scene, boxes,
                          os.path.join(fig_dir, f"fig6_{slug}.ppm"))
    print(f"(PPM renderings written to {os.path.normpath(fig_dir)})")

    stats = {name: alignment_report(name, scene.boxes, boxes)
             for name, boxes in predictions.items()}
    # At full scale every variant produces predictions on the scene; a
    # 300-step quick-scale checkpoint may stay below threshold.
    from bench_config import SCALE
    if SCALE == "full":
        for name, stat in stats.items():
            assert stat.detected + stat.extraneous > 0, \
                f"{name} went silent"
    else:
        assert any(stat.detected + stat.extraneous > 0
                   for stat in stats.values())

    benchmark(lambda: alignment_report(
        "Base Model", scene.boxes, predictions["Base Model"]))
