"""Micro-benchmark: batched lowered execution vs per-frame execution.

Measures the perf wins of the lowered-execution PRs as separate
numbers:

* **geometry cache** — per-frame throughput with warm shape plans vs
  cold (cache cleared before every frame);
* **micro-batching** — batched windows of 1/2/4/8 frames through one
  gather + one gemm per layer vs warm per-frame execution;
* **occupancy-gated sparsity** — the compressed tiny detector's
  executor stack replayed on inputs captured from real sparse scenario
  streams, dense vs under an active occupancy context
  (``sparse_speedup_vs_dense``).

Writes ``BENCH_throughput.json`` at the repo root.  The batched and
sparse passes are bit-identical to the sequential dense one (pinned by
``tests/nn/test_batched_quantized.py`` and
``tests/runtime/test_sparse_execution.py``), so this file only
measures — plus guard assertions that the machinery actually pays:
batch-8 must beat warm per-frame by >= 2x and sparse must beat dense
on ``far_sparse`` (both floors relax to >= 1.0x under
``REPRO_BENCH_TINY=1``, where runs are sized for shared CI runners).

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_throughput.py -q``.
"""

import json
import os
import time

import numpy as np

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.occupancy import activate_occupancy
from repro.nn.quantized import (QuantizedConv2d, QuantizedConvTranspose2d,
                                QuantizedLinear, activation_scale)

TINY = os.environ.get("REPRO_BENCH_TINY", "0") == "1"
BATCH_SIZES = (1, 2, 4, 8)
FRAMES = 16 if TINY else 32
REPEATS = 5
SPARSE_SCENARIOS = ("far_sparse", "sensor_dropout")
SPARSE_FRAMES = 4 if TINY else 8
SPARSE_REPEATS = 15 if TINY else 40
OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                        "BENCH_throughput.json")


def _merge_report(update: dict) -> dict:
    """Merge ``update`` into the committed report (keeps other tests'
    sections when one benchmark is run alone)."""
    report = {}
    if os.path.exists(OUT_PATH):
        with open(OUT_PATH) as handle:
            report = json.load(handle)
    report.update(update)
    with open(OUT_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def _layer_stack(rng):
    """PointPillars-/SMOKE-shaped quantized layers with their inputs.

    One backbone conv, one upsample deconv, one PFN-style linear —
    the three executor kinds the runtime batches.  Shapes are small so
    the per-call Python/gather overhead that batching amortizes is a
    visible fraction of each frame.
    """
    if TINY:
        conv_shape, deconv_shape, linear_shape = (
            (1, 4, 6, 6), (1, 4, 3, 3), (1, 20, 8))
        conv = nn.Conv2d(4, 4, 3, padding=1, rng=rng)
        deconv = nn.ConvTranspose2d(4, 4, 2, stride=2, rng=rng)
        linear = nn.Linear(8, 4, rng=rng)
    else:
        conv_shape, deconv_shape, linear_shape = (
            (1, 8, 8, 8), (1, 8, 4, 4), (1, 50, 16))
        conv = nn.Conv2d(8, 8, 3, padding=1, rng=rng)
        deconv = nn.ConvTranspose2d(8, 8, 2, stride=2, rng=rng)
        linear = nn.Linear(16, 8, rng=rng)

    stack = []
    for layer, cls, shape in ((conv, QuantizedConv2d, conv_shape),
                              (deconv, QuantizedConvTranspose2d,
                               deconv_shape),
                              (linear, QuantizedLinear, linear_shape)):
        frames = [rng.standard_normal(shape).astype(np.float32)
                  for _ in range(FRAMES)]
        scale = activation_scale(np.concatenate(frames), 8)
        executor = cls.from_float(layer, scale, weight_bits=8,
                                  activation_bits=8)
        stack.append((executor, [Tensor(f) for f in frames]))
    return stack


def _clear_plans(stack):
    F.clear_geometry_cache()
    for executor, _ in stack:
        getattr(executor, "_plans", {}).clear()


def _time(fn):
    """Best-of-REPEATS wall time of ``fn`` (seconds)."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run_per_frame(stack, cold):
    def run():
        for executor, frames in stack:
            for frame in frames:
                if cold:
                    _clear_plans(stack)
                executor.forward(frame)
    return run


def _run_batched(stack, batch):
    windows = [
        (executor,
         [Tensor(np.concatenate([f.data for f in frames[i:i + batch]]))
          for i in range(0, FRAMES, batch)])
        for executor, frames in stack]

    def run():
        for executor, batches in windows:
            for window in batches:
                executor.forward(window)
    return run


def test_throughput_report():
    rng = np.random.default_rng(0)
    stack = _layer_stack(rng)

    # Warm everything once so compile-once costs stay out of "warm".
    for executor, frames in stack:
        executor.forward(frames[0])

    cold_s = _time(_run_per_frame(stack, cold=True))
    _clear_plans(stack)
    for executor, frames in stack:
        executor.forward(frames[0])
    warm_s = _time(_run_per_frame(stack, cold=False))

    batched_fps = {}
    for batch in BATCH_SIZES:
        batched_fps[str(batch)] = FRAMES / _time(_run_batched(stack,
                                                              batch))

    report = {
        "tiny": TINY,
        "frames": FRAMES,
        "repeats": REPEATS,
        "layers": [type(executor).__name__ for executor, _ in stack],
        "per_frame_cold_fps": FRAMES / cold_s,
        "per_frame_warm_fps": FRAMES / warm_s,
        "batched_fps": batched_fps,
        "geometry_cache_speedup": cold_s / warm_s,
        "batch8_speedup_vs_per_frame":
            batched_fps["8"] / (FRAMES / warm_s),
    }
    _merge_report(report)

    print("\nthroughput (frames/s): "
          f"cold {report['per_frame_cold_fps']:.0f}, "
          f"warm {report['per_frame_warm_fps']:.0f}, "
          + ", ".join(f"batch{b} {fps:.0f}"
                      for b, fps in batched_fps.items()))
    print(f"geometry cache speedup: "
          f"{report['geometry_cache_speedup']:.2f}x; "
          f"batch-8 vs per-frame: "
          f"{report['batch8_speedup_vs_per_frame']:.2f}x")

    # The caches must pay for themselves, and batching must pay on top.
    assert report["geometry_cache_speedup"] >= 1.0
    floor = 1.0 if TINY else 2.0
    assert report["batch8_speedup_vs_per_frame"] >= floor, (
        f"batch-8 only {report['batch8_speedup_vs_per_frame']:.2f}x "
        f"over per-frame (floor {floor}x)")


# ---------------------------------------------------------------------------
# Occupancy-gated sparse execution
# ---------------------------------------------------------------------------

def _captured_stack(scenario):
    """The compressed tiny detector's executor calls on a real stream.

    Streams ``scenario`` scenes through the lowered program once while
    recording every ``(executor, input)`` call — the honest workload
    for the sparse/dense comparison, because the canvas sparsity the
    occupancy machinery exploits (e.g. the PFN's ~70% padded point
    slots on ``far_sparse``) only exists in scene-derived activations,
    not in synthetic dense tensors.
    """
    from repro.core import UPAQCompressor
    from repro.fuzzing.matrix import build_fuzz_model, build_preset_config
    from repro.ir.lowering import lower_executors
    from repro.pointcloud import make_scenario_scenes
    from repro.runtime.executors import LoweredProgram

    base = build_fuzz_model("tiny")
    outcome = UPAQCompressor(build_preset_config("hck")).compress(
        base, *base.example_inputs())
    model = outcome.model
    model.eval()
    program = LoweredProgram(lower_executors(outcome.ir, model),
                             mode="lowered")

    captured = []
    for executor in program.executors.values():
        def recorder(x, _ex=executor, _orig=executor.forward):
            captured.append((_ex, x))
            return _orig(x)
        object.__setattr__(executor, "forward", recorder)
    try:
        scenes = make_scenario_scenes(scenario, SPARSE_FRAMES, seed=0)
        with program.attached(model):
            for scene in scenes:
                model.predict(scene)
    finally:
        for executor in program.executors.values():
            object.__delattr__(executor, "forward")
    return captured


def _time_interleaved(fn_a, fn_b, repeats):
    """Best-of wall times of two workloads, alternated every repeat so
    neither side systematically inherits a warmer cache/allocator."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn_a()
        mid = time.perf_counter()
        fn_b()
        best_a = min(best_a, mid - start)
        best_b = min(best_b, time.perf_counter() - mid)
    return best_a, best_b


def test_sparse_throughput_report():
    speedups = {}
    for scenario in SPARSE_SCENARIOS:
        captured = _captured_stack(scenario)

        def dense():
            for executor, x in captured:
                executor.forward(x)

        def sparse():
            with activate_occupancy():
                for executor, x in captured:
                    executor.forward(x)

        # Warm both paths (shape plans, window plans) before timing.
        dense()
        sparse()
        dense_s, sparse_s = _time_interleaved(dense, sparse,
                                              SPARSE_REPEATS)
        speedups[scenario] = dense_s / sparse_s
        print(f"\nsparse vs dense on {scenario}: "
              f"dense {SPARSE_FRAMES / dense_s:.1f} fps, "
              f"sparse {SPARSE_FRAMES / sparse_s:.1f} fps "
              f"({speedups[scenario]:.2f}x)")

    _merge_report({
        "sparse_frames": SPARSE_FRAMES,
        "sparse_repeats": SPARSE_REPEATS,
        "sparse_speedup_vs_dense": speedups,
    })

    # Sparse execution must pay where the paper says it should: sparse
    # scenario streams.  (Strict win outside TINY; shared CI runners
    # only have to not regress.)
    floor = 1.0 if TINY else 1.02
    assert speedups["far_sparse"] >= floor, (
        f"sparse only {speedups['far_sparse']:.2f}x over dense on "
        f"far_sparse (floor {floor}x)")
