"""Micro-benchmark: batched lowered execution vs per-frame execution.

Measures the two perf wins of the batching PR as separate numbers:

* **geometry cache** — per-frame throughput with warm shape plans vs
  cold (cache cleared before every frame);
* **micro-batching** — batched windows of 1/2/4/8 frames through one
  gather + one gemm per layer vs warm per-frame execution.

Writes ``BENCH_throughput.json`` at the repo root.  The batched pass
is bit-identical to the sequential one (pinned by
``tests/nn/test_batched_quantized.py``), so this file only measures —
plus one guard assertion that batching actually pays: batch-8 must
beat warm per-frame by >= 2x (>= 1.0x under ``REPRO_BENCH_TINY=1``,
where shapes are too small for stable ratios on shared CI runners).

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_throughput.py -q``.
"""

import json
import os
import time

import numpy as np

from repro import nn
from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.quantized import (QuantizedConv2d, QuantizedConvTranspose2d,
                                QuantizedLinear, activation_scale)

TINY = os.environ.get("REPRO_BENCH_TINY", "0") == "1"
BATCH_SIZES = (1, 2, 4, 8)
FRAMES = 16 if TINY else 32
REPEATS = 5
OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                        "BENCH_throughput.json")


def _layer_stack(rng):
    """PointPillars-/SMOKE-shaped quantized layers with their inputs.

    One backbone conv, one upsample deconv, one PFN-style linear —
    the three executor kinds the runtime batches.  Shapes are small so
    the per-call Python/gather overhead that batching amortizes is a
    visible fraction of each frame.
    """
    if TINY:
        conv_shape, deconv_shape, linear_shape = (
            (1, 4, 6, 6), (1, 4, 3, 3), (1, 20, 8))
        conv = nn.Conv2d(4, 4, 3, padding=1, rng=rng)
        deconv = nn.ConvTranspose2d(4, 4, 2, stride=2, rng=rng)
        linear = nn.Linear(8, 4, rng=rng)
    else:
        conv_shape, deconv_shape, linear_shape = (
            (1, 8, 8, 8), (1, 8, 4, 4), (1, 50, 16))
        conv = nn.Conv2d(8, 8, 3, padding=1, rng=rng)
        deconv = nn.ConvTranspose2d(8, 8, 2, stride=2, rng=rng)
        linear = nn.Linear(16, 8, rng=rng)

    stack = []
    for layer, cls, shape in ((conv, QuantizedConv2d, conv_shape),
                              (deconv, QuantizedConvTranspose2d,
                               deconv_shape),
                              (linear, QuantizedLinear, linear_shape)):
        frames = [rng.standard_normal(shape).astype(np.float32)
                  for _ in range(FRAMES)]
        scale = activation_scale(np.concatenate(frames), 8)
        executor = cls.from_float(layer, scale, weight_bits=8,
                                  activation_bits=8)
        stack.append((executor, [Tensor(f) for f in frames]))
    return stack


def _clear_plans(stack):
    F.clear_geometry_cache()
    for executor, _ in stack:
        getattr(executor, "_plans", {}).clear()


def _time(fn):
    """Best-of-REPEATS wall time of ``fn`` (seconds)."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run_per_frame(stack, cold):
    def run():
        for executor, frames in stack:
            for frame in frames:
                if cold:
                    _clear_plans(stack)
                executor.forward(frame)
    return run


def _run_batched(stack, batch):
    windows = [
        (executor,
         [Tensor(np.concatenate([f.data for f in frames[i:i + batch]]))
          for i in range(0, FRAMES, batch)])
        for executor, frames in stack]

    def run():
        for executor, batches in windows:
            for window in batches:
                executor.forward(window)
    return run


def test_throughput_report():
    rng = np.random.default_rng(0)
    stack = _layer_stack(rng)

    # Warm everything once so compile-once costs stay out of "warm".
    for executor, frames in stack:
        executor.forward(frames[0])

    cold_s = _time(_run_per_frame(stack, cold=True))
    _clear_plans(stack)
    for executor, frames in stack:
        executor.forward(frames[0])
    warm_s = _time(_run_per_frame(stack, cold=False))

    batched_fps = {}
    for batch in BATCH_SIZES:
        batched_fps[str(batch)] = FRAMES / _time(_run_batched(stack,
                                                              batch))

    report = {
        "tiny": TINY,
        "frames": FRAMES,
        "repeats": REPEATS,
        "layers": [type(executor).__name__ for executor, _ in stack],
        "per_frame_cold_fps": FRAMES / cold_s,
        "per_frame_warm_fps": FRAMES / warm_s,
        "batched_fps": batched_fps,
        "geometry_cache_speedup": cold_s / warm_s,
        "batch8_speedup_vs_per_frame":
            batched_fps["8"] / (FRAMES / warm_s),
    }
    with open(OUT_PATH, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print("\nthroughput (frames/s): "
          f"cold {report['per_frame_cold_fps']:.0f}, "
          f"warm {report['per_frame_warm_fps']:.0f}, "
          + ", ".join(f"batch{b} {fps:.0f}"
                      for b, fps in batched_fps.items()))
    print(f"geometry cache speedup: "
          f"{report['geometry_cache_speedup']:.2f}x; "
          f"batch-8 vs per-frame: "
          f"{report['batch8_speedup_vs_per_frame']:.2f}x")

    # The caches must pay for themselves, and batching must pay on top.
    assert report["geometry_cache_speedup"] >= 1.0
    floor = 1.0 if TINY else 2.0
    assert report["batch8_speedup_vs_per_frame"] >= floor, (
        f"batch-8 only {report['batch8_speedup_vs_per_frame']:.2f}x "
        f"over per-frame (floor {floor}x)")
