"""The size/fidelity trade-off sweep behind the paper's motivation.

§II closes on "the trade-offs between model size and performance remain
critical".  This bench sweeps UPAQ's two knobs — non-zeros per kernel
and the quantization bit range — and prints the resulting frontier of
compression ratio vs weight-space SQNR and Jetson latency, verifying
both axes move monotonically with the knob.
"""

import numpy as np
import pytest

from repro.core import UPAQCompressor, UPAQConfig
from repro.hardware import compile_model, default_devices
from repro.models import PointPillars

MODEL = PointPillars(seed=0)
INPUTS = MODEL.example_inputs()
JETSON = default_devices()["jetson"]


def _point(n_nonzero: int, bits: tuple) -> dict:
    config = UPAQConfig(n_nonzero_kxk=n_nonzero, quant_bits=bits)
    report = UPAQCompressor(config).compress(MODEL, *INPUTS)
    plan = compile_model(report.model, *INPUTS)
    return {
        "n": n_nonzero,
        "bits": bits,
        "ratio": report.compression_ratio,
        "sqnr_db": float(np.mean([c.sqnr_db for c in report.choices])),
        "jetson_ms": JETSON.latency(plan) * 1e3,
    }


@pytest.mark.benchmark(group="sweep")
def test_sparsity_fidelity_frontier(benchmark):
    points = [_point(n, (8,)) for n in (1, 2, 3)]
    benchmark.pedantic(_point, args=(2, (8,)), rounds=1, iterations=1)

    print(f"\n{'n/kernel':>8s} {'ratio':>7s} {'SQNR dB':>8s} "
          f"{'Jetson ms':>10s}")
    for p in points:
        print(f"{p['n']:8d} {p['ratio']:6.2f}x {p['sqnr_db']:8.1f} "
              f"{p['jetson_ms']:10.3f}")

    # More retained weights → lower compression but higher fidelity.
    ratios = [p["ratio"] for p in points]
    sqnrs = [p["sqnr_db"] for p in points]
    assert ratios[0] > ratios[1] > ratios[2]
    assert sqnrs[0] < sqnrs[1] < sqnrs[2]


@pytest.mark.benchmark(group="sweep")
def test_bitwidth_latency_frontier(benchmark):
    points = [_point(3, (bits,)) for bits in (4, 8, 16)]
    benchmark.pedantic(_point, args=(3, (8,)), rounds=1, iterations=1)

    print(f"\n{'bits':>5s} {'ratio':>7s} {'SQNR dB':>8s} {'Jetson ms':>10s}")
    for p in points:
        print(f"{p['bits'][0]:5d} {p['ratio']:6.2f}x {p['sqnr_db']:8.1f} "
              f"{p['jetson_ms']:10.3f}")

    # Fewer bits → smaller and faster but noisier, monotonically.
    assert points[0]["ratio"] > points[1]["ratio"] > points[2]["ratio"]
    assert points[0]["jetson_ms"] <= points[1]["jetson_ms"] \
        <= points[2]["jetson_ms"] + 1e-9
    assert points[0]["sqnr_db"] < points[1]["sqnr_db"] \
        < points[2]["sqnr_db"]
