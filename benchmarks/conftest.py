"""Shared fixtures for the benchmark harness.

Scale is controlled by ``REPRO_BENCH_SCALE`` (see ``bench_config``).
"""

import os
import sys

import pytest

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, os.path.join(_HERE, "..", "src"))
sys.path.insert(0, _HERE)

from bench_config import budget  # noqa: E402
from repro.harness import Table2Config, run_table2  # noqa: E402


@pytest.fixture(scope="session")
def table2_pointpillars():
    """Table 2 rows for PointPillars (shared by table + figure benches)."""
    return run_table2(Table2Config(model_name="pointpillars", **budget()))


@pytest.fixture(scope="session")
def table2_smoke():
    """Table 2 rows for SMOKE."""
    return run_table2(Table2Config(model_name="smoke", **budget("smoke")))
