"""Ablations of UPAQ's design choices (DESIGN.md §6).

Each ablation switches off one mechanism the paper motivates and checks
the expected consequence:

* efficiency-score weights (α/β/γ) — latency-biased vs accuracy-biased
  selection changes the chosen bitwidths/latency.
* 1×1 transformation (Algorithm 5) on/off — turning it off loses the
  sparsity of 1×1-heavy layers.
* root-group sharing (Algorithm 1) on/off — grouping shrinks the search
  (fewer scored candidates) at equal-or-better wall time.
* pattern families (Algorithm 2) — restricting the generator narrows
  the searched mask space and cannot beat the full family's E_s.
"""

import numpy as np
import pytest

from repro.core import (EfficiencyWeights, UPAQCompressor, hck_config)
from repro.hardware import compile_model, default_devices
from repro.models import PointPillars

MODEL = PointPillars(seed=0)
INPUTS = MODEL.example_inputs()
JETSON = default_devices()["jetson"]


def _latency_ms(report):
    return JETSON.latency(compile_model(report.model, *INPUTS)) * 1e3


@pytest.mark.benchmark(group="ablation")
def test_ablation_efficiency_weights(benchmark):
    latency_biased = hck_config(
        weights=EfficiencyWeights(alpha=0.05, beta=0.8, gamma=0.15),
        quant_bits=(4, 8, 16))
    accuracy_biased = hck_config(
        weights=EfficiencyWeights(alpha=0.9, beta=0.05, gamma=0.05),
        quant_bits=(4, 8, 16))

    fast = UPAQCompressor(latency_biased).compress(MODEL, *INPUTS)
    accurate = benchmark.pedantic(
        lambda: UPAQCompressor(accuracy_biased).compress(MODEL, *INPUTS),
        rounds=1, iterations=1)

    fast_bits = np.mean([c.bits for c in fast.choices])
    accurate_bits = np.mean([c.bits for c in accurate.choices])
    print(f"\nES ablation: latency-biased mean bits {fast_bits:.1f} "
          f"({_latency_ms(fast):.3f} ms) vs accuracy-biased "
          f"{accurate_bits:.1f} ({_latency_ms(accurate):.3f} ms)")
    assert fast_bits < accurate_bits
    assert _latency_ms(fast) <= _latency_ms(accurate) + 1e-6
    # Accuracy-biased selection preserves more signal (higher SQNR).
    assert np.mean([c.sqnr_db for c in accurate.choices]) > \
        np.mean([c.sqnr_db for c in fast.choices])


@pytest.mark.benchmark(group="ablation")
def test_ablation_1x1_transformation(benchmark):
    with_transform = benchmark.pedantic(
        lambda: UPAQCompressor(
            hck_config(compress_1x1_layers=True)).compress(MODEL, *INPUTS),
        rounds=1, iterations=1)
    without = UPAQCompressor(hck_config()).compress(MODEL, *INPUTS)

    one_by_one = [c.layer for c in with_transform.choices
                  if with_transform.choice_for(c.layer).sparsity > 0
                  and c.layer in ("pfn.conv", "head.cls_head",
                                  "head.reg_head")]
    print(f"\n1x1 ablation: with transform ratio="
          f"{with_transform.compression_ratio:.2f}x, without="
          f"{without.compression_ratio:.2f}x "
          f"(1x1 layers pruned: {one_by_one})")
    # Algorithm 5 prunes the pillar feature network's 1×1 kernels...
    assert with_transform.choice_for("pfn.conv").sparsity > 0.5
    # ... which the quantize-only default does not.
    assert without.choice_for("pfn.conv").sparsity == 0.0
    # Both variants land in the HCK compression class.  (The overall
    # ratios are within noise of each other: 1×1 layers hold <1% of the
    # weights, and the tile metadata can offset the pruned values.)
    assert with_transform.compression_ratio > 3.0
    assert without.compression_ratio > 3.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_root_groups(benchmark):
    grouped = benchmark.pedantic(
        lambda: UPAQCompressor(hck_config()).compress(MODEL, *INPUTS),
        rounds=1, iterations=1)
    ungrouped = UPAQCompressor(
        hck_config(use_root_groups=False)).compress(MODEL, *INPUTS)

    searched_grouped = len(grouped.groups.groups)
    searched_ungrouped = len(ungrouped.groups.groups)
    print(f"\ngroup ablation: {searched_grouped} searched roots with "
          f"grouping vs {searched_ungrouped} without "
          f"(ratios {grouped.compression_ratio:.2f}x / "
          f"{ungrouped.compression_ratio:.2f}x)")
    # Grouping must shrink the number of independently searched layers
    # (the paper's stated purpose of Algorithm 1)...
    assert searched_grouped < searched_ungrouped
    # ...while both still compress every layer.
    assert len(grouped.choices) == len(ungrouped.choices)
    assert grouped.compression_ratio > 3.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_pattern_families(benchmark):
    full_family = benchmark.pedantic(
        lambda: UPAQCompressor(
            hck_config(num_patterns=12)).compress(MODEL, *INPUTS),
        rounds=1, iterations=1)
    diagonals_only = UPAQCompressor(
        hck_config(num_patterns=12,
                   pattern_types=("main_diagonal",
                                  "anti_diagonal"))).compress(MODEL, *INPUTS)
    rows_only = UPAQCompressor(
        hck_config(num_patterns=12,
                   pattern_types=("row",))).compress(MODEL, *INPUTS)

    def mean_score(report):
        return float(np.mean([c.score for c in report.choices
                              if np.isfinite(c.score)]))

    print(f"\npattern ablation: full-family E_s {mean_score(full_family):.3f} "
          f"vs diagonals-only {mean_score(diagonals_only):.3f} "
          f"vs rows-only {mean_score(rows_only):.3f}")
    # The richer family can only match-or-beat any restricted subset.
    assert mean_score(full_family) >= mean_score(diagonals_only) - 1e-6
    assert mean_score(full_family) >= mean_score(rows_only) - 1e-6
    for report in (diagonals_only, rows_only):
        assert report.compression_ratio > 3.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_connectivity_pruning(benchmark):
    """§III.A: connectivity pruning raises sparsity but costs fidelity."""
    plain = benchmark.pedantic(
        lambda: UPAQCompressor(hck_config()).compress(MODEL, *INPUTS),
        rounds=1, iterations=1)
    connected = UPAQCompressor(
        hck_config(connectivity_percentile=30)).compress(MODEL, *INPUTS)

    plain_sqnr = np.mean([c.sqnr_db for c in plain.choices])
    connected_sqnr = np.mean([c.sqnr_db for c in connected.choices])
    print(f"\nconnectivity ablation: sparsity "
          f"{plain.overall_sparsity:.3f} → {connected.overall_sparsity:.3f}, "
          f"mean SQNR {plain_sqnr:.1f} dB → {connected_sqnr:.1f} dB")
    assert connected.overall_sparsity > plain.overall_sparsity
    assert connected_sqnr < plain_sqnr
