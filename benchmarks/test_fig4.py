"""Regenerates Fig 4: inference speedups on the Jetson Orin Nano."""

import pytest

from repro.harness import format_fig4, speedups


@pytest.mark.benchmark(group="fig4")
def test_fig4_speedups_pointpillars(benchmark, table2_pointpillars):
    factors = benchmark(speedups, table2_pointpillars)
    print("\n" + format_fig4("PointPillars", table2_pointpillars))
    # Paper Fig 4(a): UPAQ variants are the fastest; R-TOSS ≈ 1×.
    assert factors["UPAQ (HCK)"] >= factors["UPAQ (LCK)"] * 0.99
    assert factors["UPAQ (LCK)"] > factors["LiDAR-PTQ"]
    assert factors["UPAQ (HCK)"] > 1.4
    assert abs(factors["R-TOSS"] - 1.0) < 0.15


@pytest.mark.benchmark(group="fig4")
def test_fig4_speedups_smoke(benchmark, table2_smoke):
    factors = benchmark(speedups, table2_smoke)
    print("\n" + format_fig4("SMOKE", table2_smoke))
    assert factors["UPAQ (HCK)"] >= factors["UPAQ (LCK)"] * 0.99
    assert factors["UPAQ (HCK)"] > 1.4
