"""Dataset tooling: synthetic scenes ↔ KITTI interchange format.

Generates a small synthetic dataset, writes it as a KITTI-shaped
directory tree (velodyne/*.bin, label_2/*.txt, calib/*.txt, image_2/),
reads it back, and evaluates a detector on the reloaded split — the IO
path a real-KITTI pipeline would use.

Run:  python examples/kitti_roundtrip.py
"""

import os
import tempfile

from repro.camera import CameraModel
from repro.detection import evaluate_map
from repro.models import PointPillars
from repro.pointcloud import (export_kitti, load_kitti, make_dataset)


def main() -> None:
    # 1. Generate and split 10 frames 80:10:10 like the paper.
    data = make_dataset(10, seed=7, with_image=True)
    print(f"generated {len(data['train'])} train / {len(data['val'])} val "
          f"/ {len(data['test'])} test frames")

    # 2. Write the validation+test split as a KITTI tree.
    root = os.path.join(tempfile.gettempdir(), "repro_kitti_demo")
    scenes = data["val"] + data["test"]
    export_kitti(scenes, root, camera=CameraModel.kitti_like())
    files = sorted(os.listdir(os.path.join(root, "label_2")))
    print(f"exported to {root}: labels {files}")
    with open(os.path.join(root, "label_2", files[0])) as handle:
        print("first label line:", handle.readline().strip())

    # 3. Round-trip: reload and verify structure.
    reloaded = load_kitti(root)
    assert len(reloaded) == len(scenes)
    total_boxes = sum(len(s.boxes) for s in reloaded)
    total_points = sum(len(s.points) for s in reloaded)
    print(f"reloaded {len(reloaded)} frames, {total_boxes} labels, "
          f"{total_points} LiDAR points")

    # 4. Run a (randomly initialized) detector over the reloaded frames —
    #    the same evaluation path Table 2 uses on trained checkpoints.
    model = PointPillars(seed=0)
    predictions = [model.predict(scene) for scene in reloaded]
    metrics = evaluate_map(predictions, [s.boxes for s in reloaded])
    print(f"untrained-detector sanity mAP: {metrics['mAP']:.2f} "
          "(≈0 as expected; see compress_lidar_detector.py for training)")


if __name__ == "__main__":
    main()
