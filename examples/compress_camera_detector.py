"""Camera pipeline: compress the monocular SMOKE detector with UPAQ.

SMOKE detects 3D boxes from a single RGB image by keypoint estimation +
2D→3D uplifting.  This example renders synthetic camera frames, trains a
small SMOKE, compresses it with UPAQ (both presets), and compares the
compressed detectors' 3D predictions against ground truth — including
the 1×1-kernel transformation path (Algorithm 5) that SMOKE's many
projection convolutions exercise.

Run:  python examples/compress_camera_detector.py       (~4 minutes)
Env:  QUICK=1 ... (~60 seconds)
"""

import os

from repro.core import UPAQCompressor, hck_config, lck_config
from repro.harness import (TrainConfig, evaluate_model_map, get_pretrained,
                           training_scenes, validation_scenes)
from repro.hardware import compile_model, default_devices


def main() -> None:
    quick = bool(int(os.environ.get("QUICK", "0")))
    steps = 200 if quick else 1500

    print(f"training SMOKE for {steps} steps on rendered frames ...")
    model, _ = get_pretrained("smoke", TrainConfig(steps=steps,
                                                   with_image=True))
    inputs = model.example_inputs()
    eval_scenes = validation_scenes(4 if quick else 10, with_image=True)
    finetune = training_scenes(6 if quick else 20, with_image=True,
                               start=500_000)

    jetson = default_devices()["jetson"]
    base_plan = compile_model(model, *inputs)
    base_map = evaluate_model_map(model, eval_scenes)
    print(f"base SMOKE: mAP={base_map:.2f}, "
          f"{jetson.latency(base_plan) * 1e3:.3f} ms on Jetson")

    for config in (lck_config(), hck_config()):
        compressor = UPAQCompressor(config)
        report = compressor.compress(model, *inputs)
        compressor.finetune(report, finetune,
                            epochs=1 if quick else 3)
        plan = compile_model(report.model, *inputs)
        one_by_one = [c for c in report.choices
                      if "1" in c.layer or c.sparsity < 0.9]
        print(f"{config.name}: {report.compression_ratio:.2f}x, "
              f"mAP={evaluate_model_map(report.model, eval_scenes):.2f}, "
              f"{jetson.latency(plan) * 1e3:.3f} ms "
              f"({len(report.choices)} layers compressed, "
              f"{len(one_by_one)} via the 1x1 transform or k x k path)")


if __name__ == "__main__":
    main()
