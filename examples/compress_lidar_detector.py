"""Full LiDAR pipeline: train → compress with every framework → compare.

The miniature version of the paper's Table 2 for PointPillars: trains a
small detector on synthetic KITTI-like scenes, compresses it with all
four baselines and both UPAQ variants, fine-tunes where each framework
allows, and prints compression / mAP / latency / energy side by side.

Run:  python examples/compress_lidar_detector.py        (~5 minutes)
Env:  QUICK=1 python examples/compress_lidar_detector.py (~90 seconds)
"""

import os

from repro.harness import (Table2Config, format_fig4, format_fig5,
                           format_table2, run_table2)


def main() -> None:
    quick = bool(int(os.environ.get("QUICK", "0")))
    config = Table2Config(
        model_name="pointpillars",
        pretrain_steps=300 if quick else 6400,
        finetune_scenes=6 if quick else 24,
        finetune_epochs=1 if quick else 3,
        eval_frames=4 if quick else 12,
    )
    rows = run_table2(config)
    print(format_table2("PointPillars", rows))
    print()
    print(format_fig4("PointPillars", rows))
    print()
    print(format_fig5("PointPillars", rows))


if __name__ == "__main__":
    main()
