"""Deployment walkthrough: compress → pack → ship → stream.

The full on-vehicle story: compress a detector with UPAQ, serialize it
into the packed sparse format (the bytes a deployment would actually
ship), restore it into a fresh engine on the "device", and stream scenes
through it with per-frame latency/energy accounting against a real-time
deadline.

Run:  python examples/streaming_deployment.py
"""

from repro.core import UPAQCompressor, hck_config, pack_model
from repro.hardware import default_devices
from repro.models import PointPillars
from repro.pointcloud import SceneGenerator
from repro.runtime import (DegradationPolicy, FaultInjector, FaultSpec,
                           InferenceEngine)


def main() -> None:
    # 1. Compress and pack on the "workstation".
    model = PointPillars(seed=0)
    report = UPAQCompressor(hck_config()).compress(
        model, *model.example_inputs())
    blob = pack_model(report.model)
    dense_kib = model.num_parameters() * 4 / 1024
    print(f"packed UPAQ (HCK) model: {len(blob) / 1024:.1f} KiB "
          f"(dense fp32 would be {dense_kib:.1f} KiB — "
          f"{dense_kib / (len(blob) / 1024):.2f}x)")

    # 2. Restore on the "vehicle" and build the streaming engine.
    jetson = default_devices()["jetson"]
    engine = InferenceEngine.from_packed(blob, PointPillars(seed=0),
                                         jetson, deadline_s=0.05)
    latency, energy = engine.frame_cost()
    print(f"per-frame cost on Jetson Orin Nano model: "
          f"{latency * 1e3:.3f} ms, {energy * 1e3:.2f} mJ "
          f"({'meets' if latency <= 0.05 else 'misses'} the 50 ms "
          f"real-time deadline)")

    # 3. Stream ten synthetic frames.
    generator = SceneGenerator(seed=3)
    scenes = [generator.generate(i, with_image=False) for i in range(10)]
    stream = engine.run(scenes)
    print(f"streamed {stream.num_frames} frames: "
          f"{sum(f.num_detections for f in stream.frames)} detections, "
          f"deadline hit rate {stream.deadline_hit_rate:.0%}, "
          f"total energy {stream.total_energy_j * 1e3:.1f} mJ")

    # 4. Compare against streaming the uncompressed model.
    base_engine = InferenceEngine(model, jetson, deadline_s=0.05)
    base_latency, base_energy = base_engine.frame_cost()
    print(f"uncompressed baseline: {base_latency * 1e3:.3f} ms/frame, "
          f"{base_energy * 1e3:.2f} mJ/frame → UPAQ saves "
          f"{(1 - energy / base_energy):.0%} energy per frame")

    # 5. The same stream under chaos: seeded sensor faults (frame drops,
    #    NaN-corrupted point clouds, latency jitter) with a degradation
    #    policy that holds the last good detections over corrupt frames,
    #    and a deadline watchdog ready to swap in a fallback model.
    chaos = FaultInjector(FaultSpec(drop_rate=0.2, corrupt_rate=0.1,
                                    jitter="lognormal",
                                    jitter_scale_s=0.002, seed=11))
    hardened = InferenceEngine.from_packed(
        blob, PointPillars(seed=0), jetson, deadline_s=0.05,
        policy=DegradationPolicy(on_corrupt="last_good",
                                 max_consecutive_misses=3),
        fault_injector=chaos,
        fallback_model=report.model)
    degraded = hardened.run(scenes)
    print(f"under injected faults: {degraded.summary()}")
    print("same seed → same fault schedule → identical report: "
          f"{degraded.status_counts == hardened.run(scenes).status_counts}")


if __name__ == "__main__":
    main()
