"""Extensions tour: sensitivity analysis, structured pruning, distillation.

Three capabilities beyond the paper's core pipeline:

1. per-layer quantization **sensitivity analysis** (the phenomenon that
   motivates mixed precision — §III.B);
2. **structured pruning** as the other end of the pruning spectrum
   (§III.A), compared against UPAQ's semi-structured patterns;
3. **knowledge distillation** fine-tuning (listed as future work in the
   paper), where the uncompressed teacher supervises the compressed
   student's recovery.

Run:  python examples/sensitivity_and_distillation.py
"""

from repro.baselines import StructuredPruner
from repro.core import (DistillConfig, UPAQCompressor, analyze_sensitivity,
                        distill_finetune, hck_config,
                        suggest_bit_allocation)
from repro.hardware import compile_model, default_devices
from repro.models import PointPillars
from repro.pointcloud import SceneGenerator


def main() -> None:
    model = PointPillars(seed=0)
    inputs = model.example_inputs()

    # 1. Which layers tolerate 4-bit weights?
    profile = analyze_sensitivity(model, *inputs, quant_bits=(4, 8, 16))
    ranked = profile.most_sensitive(bits=4)
    print("most 4-bit-sensitive layers:", ", ".join(ranked[:3]))
    allocation = suggest_bit_allocation(profile, max_output_error=0.05)
    print("greedy bit suggestion:",
          {name: bits for name, bits in list(allocation.items())[:5]}, "…")

    # 2. Structured vs semi-structured at similar compute skip.
    jetson = default_devices()["jetson"]
    structured = StructuredPruner(prune_fraction=0.5, bits=8)
    s_report = structured.compress(model, *inputs)
    u_report = UPAQCompressor(hck_config()).compress(model, *inputs)
    for name, report in (("structured 50%", s_report),
                         ("UPAQ (HCK)", u_report)):
        plan = compile_model(report.model, *inputs)
        print(f"{name:15s}: {report.compression_ratio:.2f}x storage, "
              f"{jetson.latency(plan) * 1e3:.3f} ms on Jetson")

    # 3. Distill the compressed student against the dense teacher.
    generator = SceneGenerator(seed=0)
    scenes = [generator.generate(i, with_image=False) for i in range(4)]
    history = distill_finetune(u_report, model, scenes,
                               DistillConfig(epochs=2, lr=1e-3))
    print(f"distillation loss: {history[0]:.3f} → {history[-1]:.3f} "
          f"over {len(history)} epochs")


if __name__ == "__main__":
    main()
