"""Quickstart: compress a 3D detector with UPAQ in ~30 seconds.

Builds a PointPillars detector, compresses it with the paper's two UPAQ
presets (HCK = high compression, LCK = high accuracy), and reports
compression ratio, on-device latency and energy on the simulated Jetson
Orin Nano — the numbers behind Table 2's headline claims.

Run:  python examples/quickstart.py
"""

from repro.core import UPAQCompressor, hck_config, lck_config
from repro.hardware import compile_model, default_devices
from repro.models import PointPillars
from repro.pointcloud import SceneGenerator


def main() -> None:
    # 1. A pretrained-shape detector and a synthetic KITTI-like frame.
    model = PointPillars(seed=0)
    scene = SceneGenerator(seed=0).generate(0, with_image=False)
    inputs = model.example_inputs()

    # 2. Price the dense baseline on the simulated Jetson Orin Nano.
    jetson = default_devices()["jetson"]
    base_plan = compile_model(model, *inputs)
    base_ms = jetson.latency(base_plan) * 1e3
    base_mj = jetson.energy(base_plan) * 1e3
    print(f"Base model: {model.num_parameters() / 1e3:.0f}k params, "
          f"{base_ms:.3f} ms, {base_mj:.2f} mJ per inference")

    # 3. Compress with both UPAQ presets.
    for config in (lck_config(), hck_config()):
        report = UPAQCompressor(config).compress(model, *inputs)
        plan = compile_model(report.model, *inputs)
        ms = jetson.latency(plan) * 1e3
        mj = jetson.energy(plan) * 1e3
        print(f"{config.name}: {report.compression_ratio:.2f}x smaller, "
              f"{base_ms / ms:.2f}x faster ({ms:.3f} ms), "
              f"{base_mj / mj:.2f}x less energy ({mj:.2f} mJ), "
              f"sparsity {report.overall_sparsity:.0%}, "
              f"mean {report.mean_bits:.1f} bits")

        # 4. The compressed model still runs end-to-end.
        detections = report.model.predict(scene)
        print(f"  → inference OK: {len(detections.boxes)} detections "
              f"on a scene with {len(scene.boxes)} objects")


if __name__ == "__main__":
    main()
