"""Deployment exploration: per-layer latency, power traces, bitwidth sweep.

Shows the hardware substrate the efficiency score (eq. 2) runs on: how a
compiled plan breaks into per-layer compute/memory costs on the Jetson
Orin Nano vs the RTX 4080, what the NVpower-style sampled power trace
looks like, and how latency/energy respond to a uniform bitwidth sweep —
the raw trade-off UPAQ's mixed-precision search navigates per layer.

Run:  python examples/deploy_energy_profile.py
"""

from repro.hardware import (CompressionMeta, EnergyMeter, annotate_layer,
                            compile_model, default_devices)
from repro.models import PointPillars
from repro.nn.graph import layer_map


def main() -> None:
    model = PointPillars(seed=0)
    inputs = model.example_inputs()
    devices = default_devices()

    # 1. Per-layer cost breakdown on both devices.
    plan = compile_model(model, *inputs)
    print(f"{'layer':42s} {'MACs':>12s} {'Jetson µs':>10s} {'RTX µs':>8s}")
    for layer in plan.layers:
        jet_us = devices['jetson'].layer_latency(layer) * 1e6
        rtx_us = devices['rtx4080'].layer_latency(layer) * 1e6
        print(f"{layer.profile.name:42s} {layer.profile.macs:12,d} "
              f"{jet_us:10.1f} {rtx_us:8.2f}")
    print(f"non-kernel floor (BN/act/NMS): "
          f"{devices['jetson'].nonkernel_time(plan) * 1e6:.1f} µs Jetson\n")

    # 2. NVpower-style sampled power trace of one inference.
    meter = EnergyMeter(devices["jetson"], sample_rate_hz=2e6)
    energy, samples = meter.measure(plan)
    powers = [s.power_w for s in samples]
    print(f"power trace: {len(samples)} samples, "
          f"min {min(powers):.1f} W, max {max(powers):.1f} W, "
          f"kernel energy {energy * 1e3:.2f} mJ, "
          f"avg board power {meter.average_power(plan):.1f} W\n")

    # 3. Conv+BN folding: the compiler pass that removes the BN traffic.
    from repro.hardware import fold_batchnorm
    folded_plan = compile_model(fold_batchnorm(model), *inputs)
    print(f"conv+BN folding: elementwise traffic "
          f"{plan.elementwise_bytes / 1024:.0f} KiB → "
          f"{folded_plan.elementwise_bytes / 1024:.0f} KiB, "
          f"Jetson latency {devices['jetson'].latency(plan) * 1e3:.3f} → "
          f"{devices['jetson'].latency(folded_plan) * 1e3:.3f} ms\n")

    # 4. Uniform bitwidth sweep: the latency/energy side of eq. 2.
    print(f"{'bits':>4s} {'Jetson ms':>10s} {'speedup':>8s} "
          f"{'energy mJ':>10s} {'reduction':>9s}")
    base_lat = devices["jetson"].latency(plan)
    base_energy = devices["jetson"].energy(plan)
    for bits in (32, 16, 8, 4):
        for module in layer_map(model).values():
            annotate_layer(module, CompressionMeta(
                bits=bits, scheme="dense" if bits == 32
                else "semi-structured"))
        swept = compile_model(model, *inputs)
        lat = devices["jetson"].latency(swept)
        energy = devices["jetson"].energy(swept)
        print(f"{bits:4d} {lat * 1e3:10.3f} {base_lat / lat:7.2f}x "
              f"{energy * 1e3:10.2f} {base_energy / energy:8.2f}x")


if __name__ == "__main__":
    main()
